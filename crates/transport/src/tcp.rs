//! TCP transport: thread-per-connection with dedicated reader and
//! writer threads, mirroring the multi-threaded blocking-I/O design of
//! the original Java server.
//!
//! Frames use [`corona_types::frame`] (`len ∥ crc32 ∥ body`). The
//! writer thread drains its queue and batches buffered frames into a
//! single flush, so a burst of multicast fan-out messages to one
//! client costs one syscall, not N.

use crate::traits::{Connection, Dialer, Listener, TransportError, DEFAULT_SEND_CAPACITY};
use bytes::Bytes;
use corona_types::frame::{read_frame, write_frame};
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use std::io::{BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// `arg` value of a [`corona_trace::Hop::Disconnect`] span for a peer
/// that hung up cleanly between frames.
pub const DISCONNECT_CLEAN: u64 = 0;
/// `arg` value of a [`corona_trace::Hop::Disconnect`] span for an
/// abnormal teardown: mid-frame EOF, I/O error, or CRC mismatch.
pub const DISCONNECT_ERROR: u64 = 1;

/// A TCP connection with background reader/writer threads.
#[derive(Debug)]
pub struct TcpConnection {
    outbound: Sender<Bytes>,
    inbound: Receiver<Bytes>,
    closed: Arc<AtomicBool>,
    send_capacity: AtomicUsize,
    stream: TcpStream,
    peer: String,
}

impl TcpConnection {
    /// Wraps an established stream, spawning its I/O threads.
    ///
    /// # Errors
    ///
    /// I/O errors cloning the stream handle.
    pub fn from_stream(stream: TcpStream) -> Result<Self, TransportError> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".to_string());
        let closed = Arc::new(AtomicBool::new(false));
        let (out_tx, out_rx) = channel::unbounded::<Bytes>();
        let (in_tx, in_rx) = channel::unbounded::<Bytes>();

        // Reader thread: frames -> inbound channel. A peer hanging up
        // between frames (`Ok(None)`) is a clean shutdown; mid-frame
        // EOF, I/O failures, and CRC mismatches are abnormal. Both end
        // the connection, but they are distinct trace events — and a
        // locally initiated close tears down the socket under the
        // reader, so errors after `close()` are not recorded as peer
        // failures.
        {
            let mut read_stream = stream.try_clone()?;
            let closed = Arc::clone(&closed);
            std::thread::Builder::new()
                .name(format!("tcp-read-{peer}"))
                .spawn(move || {
                    loop {
                        match read_frame(&mut read_stream) {
                            Ok(Some(frame)) => {
                                if in_tx.send(frame).is_err() {
                                    break;
                                }
                            }
                            Ok(None) => {
                                if !closed.load(Ordering::Acquire) {
                                    corona_trace::record(
                                        corona_trace::Hop::Disconnect,
                                        corona_trace::TraceId::NONE,
                                        0,
                                        DISCONNECT_CLEAN,
                                    );
                                }
                                break;
                            }
                            Err(_) => {
                                if !closed.load(Ordering::Acquire) {
                                    corona_trace::record(
                                        corona_trace::Hop::Disconnect,
                                        corona_trace::TraceId::NONE,
                                        0,
                                        DISCONNECT_ERROR,
                                    );
                                }
                                break;
                            }
                        }
                    }
                    closed.store(true, Ordering::Release);
                    // Dropping in_tx unblocks any recv() with Closed
                    // after the queue drains.
                })
                .expect("spawn tcp reader");
        }

        // Writer thread: outbound channel -> frames, batched flushes.
        {
            let write_stream = stream.try_clone()?;
            let closed = Arc::clone(&closed);
            std::thread::Builder::new()
                .name(format!("tcp-write-{peer}"))
                .spawn(move || {
                    let mut writer = BufWriter::new(write_stream);
                    let mut write_failed = false;
                    'outer: while let Ok(frame) = out_rx.recv() {
                        if write_frame(&mut writer, &frame).is_err() {
                            write_failed = true;
                            break;
                        }
                        // Batch whatever else is already queued.
                        loop {
                            match out_rx.try_recv() {
                                Ok(next) => {
                                    if write_frame(&mut writer, &next).is_err() {
                                        write_failed = true;
                                        break 'outer;
                                    }
                                }
                                Err(TryRecvError::Empty) => break,
                                Err(TryRecvError::Disconnected) => {
                                    let _ = writer.flush();
                                    break 'outer;
                                }
                            }
                        }
                        if writer.flush().is_err() {
                            write_failed = true;
                            break;
                        }
                    }
                    if write_failed && !closed.load(Ordering::Acquire) {
                        corona_trace::record(
                            corona_trace::Hop::Disconnect,
                            corona_trace::TraceId::NONE,
                            0,
                            DISCONNECT_ERROR,
                        );
                    }
                    closed.store(true, Ordering::Release);
                    let _ = writer.get_ref().shutdown(Shutdown::Both);
                })
                .expect("spawn tcp writer");
        }

        Ok(TcpConnection {
            outbound: out_tx,
            inbound: in_rx,
            closed,
            send_capacity: AtomicUsize::new(DEFAULT_SEND_CAPACITY),
            stream,
            peer,
        })
    }
}

impl Connection for TcpConnection {
    fn send(&self, frame: Bytes) -> Result<(), TransportError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // The writer thread drains the queue; if the peer stalls, the
        // queue grows toward the cap and we push back rather than
        // buffer unboundedly.
        if self.outbound.len() >= self.send_capacity.load(Ordering::Relaxed) {
            return Err(TransportError::Full);
        }
        self.outbound
            .send(frame)
            .map_err(|_| TransportError::Closed)
    }

    fn recv(&self) -> Result<Bytes, TransportError> {
        self.inbound.recv().map_err(|_| TransportError::Closed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Bytes, TransportError> {
        self.inbound.recv_timeout(timeout).map_err(|e| match e {
            channel::RecvTimeoutError::Timeout => TransportError::Timeout,
            channel::RecvTimeoutError::Disconnected => TransportError::Closed,
        })
    }

    fn try_recv(&self) -> Result<Option<Bytes>, TransportError> {
        match self.inbound.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(TransportError::Closed),
        }
    }

    fn set_send_capacity(&self, cap: usize) {
        self.send_capacity.store(cap.max(1), Ordering::Relaxed);
    }

    fn backlog(&self) -> usize {
        self.outbound.len()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    fn peer_label(&self) -> String {
        self.peer.clone()
    }
}

impl Drop for TcpConnection {
    fn drop(&mut self) {
        self.close();
    }
}

/// A TCP listener. `accept` blocks on the OS accept queue.
#[derive(Debug)]
pub struct TcpAcceptor {
    listener: TcpListener,
    addr: String,
    shutdown: AtomicBool,
}

impl TcpAcceptor {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn bind(addr: &str) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?.to_string();
        Ok(TcpAcceptor {
            listener,
            addr,
            shutdown: AtomicBool::new(false),
        })
    }
}

impl Listener for TcpAcceptor {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return Err(TransportError::Closed);
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return Err(TransportError::Closed);
                    }
                    return Ok(Box::new(TcpConnection::from_stream(stream)?));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return Err(TransportError::Closed);
                    }
                    return Err(e.into());
                }
            }
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }

    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept() by dialing ourselves.
        let _ = TcpStream::connect(&self.addr);
    }
}

/// Dials TCP endpoints.
#[derive(Debug, Clone, Copy, Default)]
pub struct TcpDialer;

impl Dialer for TcpDialer {
    fn dial(&self, addr: &str) -> Result<Box<dyn Connection>, TransportError> {
        let stream = TcpStream::connect(addr)?;
        Ok(Box::new(TcpConnection::from_stream(stream)?))
    }

    fn dial_timeout(
        &self,
        addr: &str,
        timeout: Duration,
    ) -> Result<Box<dyn Connection>, TransportError> {
        use std::net::ToSocketAddrs;
        let sockaddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| TransportError::Io(format!("{addr}: no addresses resolved")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout).map_err(|e| {
            if e.kind() == std::io::ErrorKind::TimedOut {
                TransportError::Timeout
            } else {
                TransportError::Io(e.to_string())
            }
        })?;
        Ok(Box::new(TcpConnection::from_stream(stream)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dial_send_recv_roundtrip() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            let frame = conn.recv().unwrap();
            conn.send(Bytes::from(format!(
                "echo:{}",
                String::from_utf8_lossy(&frame)
            )))
            .unwrap();
            // Keep the connection alive until the client read the echo.
            let _ = conn.recv();
        });
        let client = TcpDialer.dial(&addr).unwrap();
        client.send(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(client.recv().unwrap().as_ref(), b"echo:hello");
        client.close();
        server.join().unwrap();
    }

    #[test]
    fn many_frames_preserve_order() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            let mut got = Vec::new();
            for _ in 0..500 {
                got.push(conn.recv().unwrap());
            }
            got
        });
        let client = TcpDialer.dial(&addr).unwrap();
        for i in 0..500u32 {
            client.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        let got = server.join().unwrap();
        for (i, frame) in got.iter().enumerate() {
            assert_eq!(
                u32::from_le_bytes(frame.as_ref().try_into().unwrap()),
                i as u32
            );
        }
    }

    #[test]
    fn peer_close_surfaces_as_closed() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            conn.send(Bytes::from_static(b"bye")).unwrap();
            // Give the writer thread a beat to flush before close.
            std::thread::sleep(Duration::from_millis(20));
            conn.close();
        });
        let client = TcpDialer.dial(&addr).unwrap();
        assert_eq!(client.recv().unwrap().as_ref(), b"bye");
        assert_eq!(client.recv().unwrap_err(), TransportError::Closed);
        server.join().unwrap();
    }

    #[test]
    fn recv_timeout_expires() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let _server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            std::thread::sleep(Duration::from_millis(200));
            drop(conn);
        });
        let client = TcpDialer.dial(&addr).unwrap();
        assert_eq!(
            client.recv_timeout(Duration::from_millis(30)).unwrap_err(),
            TransportError::Timeout
        );
    }

    #[test]
    fn try_recv_nonblocking() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            conn.send(Bytes::from_static(b"x")).unwrap();
            std::thread::sleep(Duration::from_millis(100));
        });
        let client = TcpDialer.dial(&addr).unwrap();
        // Eventually the frame arrives; poll with try_recv.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            match client.try_recv().unwrap() {
                Some(frame) => {
                    assert_eq!(frame.as_ref(), b"x");
                    break;
                }
                None => {
                    assert!(std::time::Instant::now() < deadline, "frame never arrived");
                    std::thread::yield_now();
                }
            }
        }
        server.join().unwrap();
    }

    #[test]
    fn listener_shutdown_unblocks_accept() {
        let acceptor = Arc::new(TcpAcceptor::bind("127.0.0.1:0").unwrap());
        let acceptor2 = Arc::clone(&acceptor);
        let handle = std::thread::spawn(move || acceptor2.accept());
        std::thread::sleep(Duration::from_millis(50));
        acceptor.shutdown();
        let result = handle.join().unwrap();
        assert!(matches!(result, Err(TransportError::Closed)));
    }

    #[test]
    fn dial_unreachable_fails() {
        // Port 1 on localhost is essentially never listening.
        let err = TcpDialer.dial("127.0.0.1:1").unwrap_err();
        assert!(matches!(err, TransportError::Io(_)));
    }

    #[test]
    fn dial_timeout_connects_and_classifies_failures() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            let _ = conn.recv();
        });
        let client = TcpDialer
            .dial_timeout(&addr, Duration::from_secs(5))
            .unwrap();
        client.close();
        server.join().unwrap();

        // A refused connect is terminal (try the next roster address);
        // only Timeout/Full are worth retrying in place.
        let err = TcpDialer
            .dial_timeout("127.0.0.1:1", Duration::from_secs(2))
            .unwrap_err();
        assert!(!err.is_transient(), "refused connect is terminal: {err}");
        assert!(TransportError::Timeout.is_transient());
        assert!(TransportError::Full.is_transient());
        assert!(!TransportError::Closed.is_transient());
    }

    #[test]
    fn backlog_drains_toward_zero() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            let mut got = 0;
            while got < 100 {
                conn.recv().unwrap();
                got += 1;
            }
        });
        let client = TcpDialer.dial(&addr).unwrap();
        for _ in 0..100 {
            client.send(Bytes::from(vec![0u8; 1024])).unwrap();
        }
        // The writer thread drains the queue; backlog must reach zero.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while client.backlog() > 0 {
            assert!(std::time::Instant::now() < deadline, "backlog stuck");
            std::thread::yield_now();
        }
        server.join().unwrap();
    }

    /// Waits until a Disconnect span with `arg` shows up in the flight
    /// recorder (the reader thread records asynchronously).
    fn await_disconnect_span(arg: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        loop {
            let hit = corona_trace::drain()
                .iter()
                .any(|s| s.hop == corona_trace::Hop::Disconnect && s.arg == arg);
            if hit {
                return;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no Disconnect span with arg={arg} recorded"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn disconnects_are_recorded_as_trace_events() {
        corona_trace::set_enabled(true);
        corona_trace::clear();

        // Phase 1: the peer hangs up between frames — clean shutdown.
        {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let client = TcpDialer.dial(&addr).unwrap();
            let server_conn = acceptor.accept().unwrap();
            client.close();
            await_disconnect_span(DISCONNECT_CLEAN);
            drop(server_conn);
        }

        // Phase 2: the stream dies mid-frame — abnormal teardown.
        {
            let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
            let addr = acceptor.local_addr();
            let raw = TcpStream::connect(&addr).unwrap();
            let server_conn = acceptor.accept().unwrap();
            // Half a frame header, then hang up.
            (&raw).write_all(&[9, 0, 0][..]).unwrap();
            drop(raw);
            await_disconnect_span(DISCONNECT_ERROR);
            drop(server_conn);
        }

        corona_trace::set_enabled(false);
        corona_trace::clear();
    }

    #[test]
    fn bounded_queue_rejects_when_writer_stalls() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        // The server accepts but never reads, so the client's writer
        // thread eventually blocks on a full socket buffer and the
        // transmit queue backs up to its cap.
        let server = std::thread::spawn(move || {
            let conn = acceptor.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
            drop(conn);
        });
        let client = TcpDialer.dial(&addr).unwrap();
        client.set_send_capacity(4);
        let frame = Bytes::from(vec![0u8; 256 * 1024]);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match client.send(frame.clone()) {
                Ok(()) => assert!(
                    std::time::Instant::now() < deadline,
                    "queue never reported Full"
                ),
                Err(TransportError::Full) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // The rejected frame was not enqueued; the queue stays bounded.
        assert!(client.backlog() <= 4, "backlog {} > cap", client.backlog());
        client.close();
        server.join().unwrap();
    }

    #[test]
    fn send_after_close_fails() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let _server = std::thread::spawn(move || {
            let _conn = acceptor.accept().unwrap();
            std::thread::sleep(Duration::from_millis(100));
        });
        let client = TcpDialer.dial(&addr).unwrap();
        client.close();
        assert_eq!(
            client.send(Bytes::from_static(b"x")).unwrap_err(),
            TransportError::Closed
        );
        assert!(client.is_closed());
    }
}
