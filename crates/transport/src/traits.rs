//! Transport abstraction: duplex, framed, message-oriented
//! connections.
//!
//! The Corona server and client are written against these traits so
//! the same code runs over real TCP (deployment, loopback benchmarks)
//! and over the deterministic in-memory network (unit/integration
//! tests with fault injection).
//!
//! Semantics are those of the paper's point-to-point TCP connections:
//! reliable, ordered, connection-oriented; a partition or crash
//! surfaces as a closed connection, never as silent reordering.

use bytes::Bytes;
use std::fmt;
use std::time::Duration;

/// Default transmit-queue bound (in frames) applied by the in-tree
/// transports until [`Connection::set_send_capacity`] overrides it.
/// Roomy enough for bursty multicast fan-out; small enough that one
/// stalled peer cannot buffer unbounded memory on the sender.
pub const DEFAULT_SEND_CAPACITY: usize = 4096;

/// Default bound (in frames) on a connection's *inbound* queue: frames
/// decoded off the wire but not yet consumed by `recv`. Once the queue
/// is full the transport stops reading the socket, so a peer that
/// sends faster than the consumer drains is throttled by ordinary TCP
/// backpressure instead of buffering unbounded memory on the receiver.
pub const DEFAULT_INBOUND_CAPACITY: usize = 1024;

/// Transport-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The connection (or listener) is closed.
    Closed,
    /// A receive wait timed out.
    Timeout,
    /// The transmit queue is at capacity; the frame was not enqueued.
    /// Explicit backpressure: the caller decides whether to retry,
    /// shed, or treat the peer as too slow and disconnect it.
    Full,
    /// An underlying I/O failure (message carries the rendered cause;
    /// `std::io::Error` is not `Clone`, and callers only branch on the
    /// variant).
    Io(String),
}

impl TransportError {
    /// Whether a later retry of the failed operation could plausibly
    /// succeed without any intervention on this endpoint.
    ///
    /// The failover runtime uses this to pick a reconnect strategy:
    /// transient failures ([`TransportError::Timeout`],
    /// [`TransportError::Full`]) are worth retrying against the *same*
    /// address after a backoff, while terminal ones
    /// ([`TransportError::Closed`], [`TransportError::Io`] — refused,
    /// unreachable, reset) mean the endpoint is gone and the next
    /// roster address should be tried first.
    pub fn is_transient(&self) -> bool {
        matches!(self, TransportError::Timeout | TransportError::Full)
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Closed => f.write_str("connection closed"),
            TransportError::Timeout => f.write_str("receive timed out"),
            TransportError::Full => f.write_str("transmit queue full"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e.to_string())
    }
}

/// A reliable, ordered, duplex connection carrying opaque frames.
///
/// All methods take `&self`: implementations are internally
/// synchronised so a connection can be shared between a reader thread
/// and writer callers.
pub trait Connection: Send + Sync + fmt::Debug {
    /// Enqueues a frame for transmission. Non-blocking: transmission
    /// happens asynchronously in send order.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the connection is closed;
    /// [`TransportError::Full`] if the transmit queue is at capacity
    /// (the frame is *not* enqueued — explicit backpressure, never an
    /// unbounded buffer).
    fn send(&self, frame: Bytes) -> Result<(), TransportError>;

    /// Caps the transmit queue at `cap` frames. Sends that would
    /// exceed the cap return [`TransportError::Full`]. Implementations
    /// start with a generous default bound; a server typically lowers
    /// it per its configuration right after accepting.
    ///
    /// The cap is **exact**: enqueue slots are reserved atomically, so
    /// concurrent senders (dispatcher replies racing fan-out workers)
    /// can never overshoot the configured capacity.
    fn set_send_capacity(&self, cap: usize);

    /// Blocks until a frame arrives.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] once the peer closes and all pending
    /// frames have been drained.
    fn recv(&self) -> Result<Bytes, TransportError>;

    /// Blocks up to `timeout` for a frame.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] on expiry; [`TransportError::Closed`]
    /// as for [`Connection::recv`].
    fn recv_timeout(&self, timeout: Duration) -> Result<Bytes, TransportError>;

    /// Returns a pending frame without blocking, or `None`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] once closed and drained.
    fn try_recv(&self) -> Result<Option<Bytes>, TransportError>;

    /// Number of outbound frames accepted by [`Connection::send`] but
    /// not yet handed to the peer (transmit backlog). The QoS-adaptive
    /// server consults this to shed low-priority traffic to slow
    /// clients.
    fn backlog(&self) -> usize;

    /// Closes both directions. Idempotent. Pending inbound frames stay
    /// readable until drained.
    fn close(&self);

    /// Whether the connection is closed (locally or by the peer).
    fn is_closed(&self) -> bool;

    /// A human-readable peer label for diagnostics.
    fn peer_label(&self) -> String;
}

/// Receives connections and inbound frames *pushed* by an evented
/// transport, instead of the server pulling them through per-connection
/// reader threads.
///
/// A listener that accepts a sink (see [`Listener::attach_sink`])
/// delivers every accepted connection through [`FrameSink::on_accept`]
/// and every decoded frame through [`FrameSink::on_frame`]; the
/// server's `accept` loop and reader threads are not used at all, which
/// is what turns server thread count from O(connections) into
/// O(reactor shards).
///
/// Calls for one connection arrive in wire order, but calls for
/// different connections may come from different reactor shard threads
/// concurrently — implementations must be internally synchronised (in
/// practice: a channel sender).
pub trait FrameSink: Send + Sync {
    /// A new connection was accepted. `conn` supports the full
    /// [`Connection`] API except that inbound frames flow through
    /// [`FrameSink::on_frame`] rather than `recv`.
    fn on_accept(&self, conn_id: u64, conn: Box<dyn Connection>);

    /// A frame arrived on `conn_id`. Returns `false` to ask the
    /// transport to pause reading this connection (inbound
    /// backpressure); reading resumes once [`FrameSink::ready_for_more`]
    /// reports `true`.
    fn on_frame(&self, conn_id: u64, frame: Bytes) -> bool;

    /// Whether connections paused by an `on_frame() == false` may
    /// resume reading. Polled by the transport; must be cheap.
    fn ready_for_more(&self) -> bool;

    /// The connection closed (peer hang-up, I/O error, or local
    /// close). `clean` distinguishes an orderly close at a frame
    /// boundary from an abnormal teardown.
    fn on_closed(&self, conn_id: u64, clean: bool);
}

/// Accepts inbound connections.
///
/// `accept` and `shutdown` may be called concurrently from different
/// threads (shutdown unblocks a pending accept), hence `Sync`.
pub trait Listener: Send + Sync {
    /// Blocks until a connection arrives.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] after [`Listener::shutdown`].
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError>;

    /// The address clients dial to reach this listener.
    fn local_addr(&self) -> String;

    /// Stops accepting; concurrent and future `accept` calls return
    /// [`TransportError::Closed`]. Idempotent.
    fn shutdown(&self);

    /// Offers the listener a push-mode [`FrameSink`]. Evented
    /// transports take ownership of accepting and reading and return
    /// `true`; the caller must then *not* call [`Listener::accept`].
    /// The default declines (`false`), meaning the caller pulls
    /// connections and frames itself — the thread-per-connection path.
    fn attach_sink(&self, sink: std::sync::Arc<dyn FrameSink>) -> bool {
        let _ = sink;
        false
    }
}

/// A connection factory (the dial side).
pub trait Dialer: Send + Sync {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the endpoint is unreachable.
    fn dial(&self, addr: &str) -> Result<Box<dyn Connection>, TransportError>;

    /// Connects to `addr`, giving up after `timeout`.
    ///
    /// The default implementation dials synchronously and ignores the
    /// timeout — correct for transports whose dial cannot block
    /// indefinitely (the in-memory network). Transports that can hang
    /// on an unresponsive endpoint (TCP dialing a partitioned host)
    /// override this with a native bounded connect.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] on expiry (a *transient* failure —
    /// see [`TransportError::is_transient`]); otherwise as
    /// [`Dialer::dial`].
    fn dial_timeout(
        &self,
        addr: &str,
        timeout: Duration,
    ) -> Result<Box<dyn Connection>, TransportError> {
        let _ = timeout;
        self.dial(addr)
    }
}
