//! Transport conformance battery.
//!
//! Every TCP-backed transport (thread-per-connection [`TcpAcceptor`],
//! sharded [`ReactorListener`]) must present identical semantics
//! through the [`Connection`] / [`Listener`] / [`Dialer`] trait
//! objects: ordering, timeouts, close propagation, accept shutdown,
//! exact bounded transmit queues, and disconnect trace events. The
//! same checks run against every (listener, dialer) pairing — the
//! wire format is shared, so threaded and reactor endpoints must
//! interoperate both ways.

use bytes::Bytes;
use corona_transport::{
    Dialer, Listener, ReactorDialer, ReactorListener, TcpAcceptor, TcpDialer, TransportError,
};
use std::sync::Arc;
use std::time::Duration;

/// One (name, listener, dialer) combination under test.
type Pairing = (&'static str, Box<dyn Listener>, Box<dyn Dialer>);

/// The transport pairings under test. `reactor_shards > 0` exercises
/// multi-shard dispatch even for single-connection cases.
fn pairings() -> Vec<Pairing> {
    vec![
        (
            "threaded/threaded",
            Box::new(TcpAcceptor::bind("127.0.0.1:0").unwrap()) as Box<dyn Listener>,
            Box::new(TcpDialer) as Box<dyn Dialer>,
        ),
        (
            "reactor/threaded",
            Box::new(ReactorListener::bind("127.0.0.1:0", 2).unwrap()),
            Box::new(TcpDialer),
        ),
        (
            "reactor/reactor",
            Box::new(ReactorListener::bind("127.0.0.1:0", 2).unwrap()),
            Box::new(ReactorDialer::new().unwrap()),
        ),
        (
            "threaded/reactor",
            Box::new(TcpAcceptor::bind("127.0.0.1:0").unwrap()),
            Box::new(ReactorDialer::new().unwrap()),
        ),
    ]
}

#[test]
fn roundtrip_echo() {
    for (name, listener, dialer) in pairings() {
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let frame = conn.recv().unwrap();
            conn.send(Bytes::from([b"echo:", frame.as_ref()].concat()))
                .unwrap();
            let _ = conn.recv(); // hold until the client hangs up
        });
        let client = dialer.dial(&addr).unwrap();
        client.send(Bytes::from_static(b"hello")).unwrap();
        assert_eq!(client.recv().unwrap().as_ref(), b"echo:hello", "{name}");
        client.close();
        server.join().unwrap();
    }
}

#[test]
fn many_frames_preserve_order() {
    for (name, listener, dialer) in pairings() {
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            for i in 0..500u32 {
                let frame = conn.recv().unwrap();
                assert_eq!(
                    u32::from_le_bytes(frame[..4].try_into().unwrap()),
                    i,
                    "frame order"
                );
            }
        });
        let client = dialer.dial(&addr).unwrap();
        for i in 0..500u32 {
            // Vary sizes so frames straddle read-chunk boundaries.
            let mut body = vec![0u8; 4 + (i as usize * 37) % 4096];
            body[..4].copy_from_slice(&i.to_le_bytes());
            loop {
                match client.send(Bytes::from(body.clone())) {
                    Ok(()) => break,
                    Err(TransportError::Full) => std::thread::sleep(Duration::from_millis(1)),
                    Err(e) => panic!("{name}: send failed: {e}"),
                }
            }
        }
        server.join().unwrap();
        client.close();
    }
}

#[test]
fn peer_close_surfaces_as_closed() {
    for (name, listener, dialer) in pairings() {
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            conn.send(Bytes::from_static(b"parting gift")).unwrap();
            // Wait for the frame to actually leave before closing.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while conn.backlog() > 0 && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
            conn.close();
        });
        let client = dialer.dial(&addr).unwrap();
        // The pending frame must stay readable, then Closed.
        assert_eq!(client.recv().unwrap().as_ref(), b"parting gift", "{name}");
        assert_eq!(client.recv().unwrap_err(), TransportError::Closed, "{name}");
        server.join().unwrap();
    }
}

#[test]
fn recv_timeout_expires() {
    for (name, listener, dialer) in pairings() {
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let _ = conn.recv(); // idle until the client leaves
        });
        let client = dialer.dial(&addr).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(
            client.recv_timeout(Duration::from_millis(50)).unwrap_err(),
            TransportError::Timeout,
            "{name}"
        );
        assert!(start.elapsed() >= Duration::from_millis(50), "{name}");
        client.close();
        server.join().unwrap();
    }
}

#[test]
fn try_recv_is_nonblocking() {
    for (name, listener, dialer) in pairings() {
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            conn.send(Bytes::from_static(b"queued")).unwrap();
            let _ = conn.recv();
        });
        let client = dialer.dial(&addr).unwrap();
        // Eventually the queued frame arrives; until then None.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match client.try_recv().unwrap() {
                Some(frame) => {
                    assert_eq!(frame.as_ref(), b"queued", "{name}");
                    break;
                }
                None => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "{name}: never arrived"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
        assert_eq!(client.try_recv().unwrap(), None, "{name}");
        client.close();
        server.join().unwrap();
    }
}

#[test]
fn shutdown_unblocks_accept() {
    for (name, listener, _dialer) in pairings() {
        let listener = Arc::new(listener);
        let l2 = Arc::clone(&listener);
        let accepting = std::thread::spawn(move || l2.accept().err());
        std::thread::sleep(Duration::from_millis(30));
        listener.shutdown();
        assert_eq!(
            accepting.join().unwrap(),
            Some(TransportError::Closed),
            "{name}"
        );
    }
}

#[test]
fn bounded_send_queue_is_exact() {
    for (name, listener, dialer) in pairings() {
        let addr = listener.local_addr();
        let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            // Accept but never read: the client's flush path stalls.
            let conn = listener.accept().unwrap();
            let _ = stop_rx.recv();
            drop(conn);
        });
        let client = dialer.dial(&addr).unwrap();
        client.set_send_capacity(4);
        let frame = Bytes::from(vec![7u8; 256 * 1024]);
        let mut saw_full = false;
        for _ in 0..64 {
            match client.send(frame.clone()) {
                Ok(()) => {}
                Err(TransportError::Full) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("{name}: unexpected send error: {e}"),
            }
        }
        assert!(saw_full, "{name}: queue never reported Full");
        assert_eq!(client.backlog(), 4, "{name}: cap must be exact at Full");
        let _ = stop_tx.send(());
        client.close();
        server.join().unwrap();
    }
}

#[test]
fn backlog_drains_toward_zero() {
    for (name, listener, dialer) in pairings() {
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            for _ in 0..32 {
                let _ = conn.recv();
            }
        });
        let client = dialer.dial(&addr).unwrap();
        for _ in 0..32 {
            client.send(Bytes::from(vec![1u8; 1024])).unwrap();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while client.backlog() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "{name}: backlog stuck at {}",
                client.backlog()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        server.join().unwrap();
        client.close();
    }
}

#[test]
fn send_after_close_fails() {
    for (name, listener, dialer) in pairings() {
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let _ = conn.recv();
        });
        let client = dialer.dial(&addr).unwrap();
        client.close();
        assert!(client.is_closed(), "{name}");
        assert_eq!(
            client.send(Bytes::from_static(b"too late")).unwrap_err(),
            TransportError::Closed,
            "{name}"
        );
        server.join().unwrap();
    }
}

#[test]
fn disconnects_are_recorded_as_trace_events() {
    use corona_transport::tcp::DISCONNECT_CLEAN;
    // Other tests in this binary run concurrently and may record
    // their own disconnect spans while tracing is enabled, so this
    // asserts only the *presence* of the clean-disconnect span; the
    // clean-vs-error distinction is pinned down by the transport unit
    // tests, which own the process.
    for (name, listener, dialer) in pairings() {
        let addr = listener.local_addr();

        // Clean close: the dial side hangs up at a frame boundary.
        corona_trace::clear();
        corona_trace::set_enabled(true);
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            // recv until Closed so the server observes the hang-up.
            while conn.recv().is_ok() {}
            listener
        });
        let client = dialer.dial(&addr).unwrap();
        client.send(Bytes::from_static(b"bye")).unwrap();
        // Drain before closing so the close lands at a frame boundary.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while client.backlog() > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        client.close();
        let listener = server.join().unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let spans = corona_trace::drain();
            if spans
                .iter()
                .any(|s| s.hop == corona_trace::Hop::Disconnect && s.arg == DISCONNECT_CLEAN)
            {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "{name}: no clean-disconnect trace event"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        corona_trace::set_enabled(false);
        drop(listener);
    }
}
