//! CRC-32 (IEEE 802.3 polynomial) used for frame and log-record
//! integrity checking.
//!
//! Implemented locally to keep the dependency set to the approved list;
//! the table-driven implementation processes one byte per step, which is
//! ample for the message sizes in this system (the paper's workloads use
//! 1 kB - 10 kB payloads).

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Lazily-computed lookup table (256 entries).
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental CRC-32 hasher for multi-part records.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds more bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &byte in data {
            let idx = ((crc ^ byte as u32) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"stateful group communication services";
        let mut h = Crc32::new();
        h.update(&data[..10]);
        h.update(&data[10..25]);
        h.update(&data[25..]);
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn finalize_is_idempotent() {
        let mut h = Crc32::new();
        h.update(b"abc");
        assert_eq!(h.finalize(), h.finalize());
    }
}
