//! Error types shared across the Corona stack.

use crate::id::{ClientId, GroupId, ObjectId};
use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Stable numeric error codes carried on the wire in `ServerEvent::Error`.
///
/// Codes are part of the protocol: clients written against one server
/// version must be able to interpret errors from another, so variants
/// carry explicit discriminants and unknown codes decode to
/// [`ErrorCode::Unknown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// The named group does not exist (never created, or deleted).
    NoSuchGroup = 1,
    /// A group with this id already exists.
    GroupExists = 2,
    /// The client is not a member of the group it tried to operate on.
    NotAMember = 3,
    /// The client is already a member of the group.
    AlreadyMember = 4,
    /// The external session policy denied the operation.
    PolicyDenied = 5,
    /// The named shared object does not exist in the group state.
    NoSuchObject = 6,
    /// A lock operation failed because another member holds the lock.
    LockHeld = 7,
    /// A lock release failed because the caller does not hold the lock.
    LockNotHeld = 8,
    /// The requested log reduction point is invalid (in the future, or
    /// before the current log base).
    BadReductionPoint = 9,
    /// A message referenced a protocol feature this server does not
    /// support (version skew).
    Unsupported = 10,
    /// The request was malformed (failed validation after decode).
    BadRequest = 11,
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown = 12,
    /// The server has lost its quorum lease and is fenced: it refuses
    /// to sequence new updates until a majority of the configured
    /// roster is reachable again. Clients should retry against the
    /// roster (another server may hold the coordinator role).
    Unavailable = 13,
    /// Catch-all for codes introduced by newer protocol revisions.
    Unknown = 0xFFFF,
}

impl ErrorCode {
    /// Decodes a wire code, mapping unrecognised values to `Unknown`.
    pub fn from_wire(raw: u16) -> ErrorCode {
        match raw {
            1 => ErrorCode::NoSuchGroup,
            2 => ErrorCode::GroupExists,
            3 => ErrorCode::NotAMember,
            4 => ErrorCode::AlreadyMember,
            5 => ErrorCode::PolicyDenied,
            6 => ErrorCode::NoSuchObject,
            7 => ErrorCode::LockHeld,
            8 => ErrorCode::LockNotHeld,
            9 => ErrorCode::BadReductionPoint,
            10 => ErrorCode::Unsupported,
            11 => ErrorCode::BadRequest,
            12 => ErrorCode::ShuttingDown,
            13 => ErrorCode::Unavailable,
            _ => ErrorCode::Unknown,
        }
    }

    /// The wire representation of this code.
    pub fn to_wire(self) -> u16 {
        self as u16
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::NoSuchGroup => "no such group",
            ErrorCode::GroupExists => "group already exists",
            ErrorCode::NotAMember => "not a member of the group",
            ErrorCode::AlreadyMember => "already a member of the group",
            ErrorCode::PolicyDenied => "denied by session policy",
            ErrorCode::NoSuchObject => "no such shared object",
            ErrorCode::LockHeld => "lock held by another member",
            ErrorCode::LockNotHeld => "lock not held by caller",
            ErrorCode::BadReductionPoint => "invalid log reduction point",
            ErrorCode::Unsupported => "unsupported protocol feature",
            ErrorCode::BadRequest => "malformed request",
            ErrorCode::ShuttingDown => "server shutting down",
            ErrorCode::Unavailable => "server fenced: quorum unavailable",
            ErrorCode::Unknown => "unknown error code",
        };
        f.write_str(s)
    }
}

/// Error produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A tag byte did not correspond to any known variant.
    InvalidTag {
        /// The context in which the tag appeared (type name).
        context: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A length field exceeded the configured sanity limit.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// The maximum permitted.
        limit: u64,
    },
    /// A declared UTF-8 string was not valid UTF-8.
    InvalidUtf8,
    /// A frame checksum did not match its body.
    ChecksumMismatch {
        /// Checksum carried in the frame header.
        expected: u32,
        /// Checksum computed over the received body.
        actual: u32,
    },
    /// Trailing bytes remained after a complete value was decoded.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} more bytes, {remaining} remaining"
            ),
            CodecError::InvalidTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            CodecError::LengthOverflow { declared, limit } => {
                write!(f, "declared length {declared} exceeds limit {limit}")
            }
            CodecError::InvalidUtf8 => f.write_str("invalid utf-8 in string field"),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: header {expected:#010x}, body {actual:#010x}"
            ),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after complete value")
            }
        }
    }
}

impl StdError for CodecError {}

/// Top-level error type of the Corona stack.
#[derive(Debug)]
pub enum CoronaError {
    /// A protocol-level error reported by the service.
    Protocol {
        /// The stable error code.
        code: ErrorCode,
        /// Human-readable detail supplied by the server.
        detail: String,
    },
    /// Wire data could not be decoded.
    Codec(CodecError),
    /// An I/O error from the transport or stable storage.
    Io(io::Error),
    /// The peer closed the connection.
    Disconnected,
    /// An operation timed out.
    Timeout {
        /// What was being waited for.
        operation: &'static str,
    },
    /// The local endpoint has been shut down.
    Closed,
    /// The client issued a request that is invalid in its current state
    /// (e.g. broadcasting to a group it never joined).
    InvalidState(String),
}

impl CoronaError {
    /// Convenience constructor for protocol errors.
    pub fn protocol(code: ErrorCode, detail: impl Into<String>) -> Self {
        CoronaError::Protocol {
            code,
            detail: detail.into(),
        }
    }

    /// Convenience constructor for a "no such group" error.
    pub fn no_such_group(group: GroupId) -> Self {
        CoronaError::protocol(ErrorCode::NoSuchGroup, format!("group {group} not found"))
    }

    /// Convenience constructor for a "not a member" error.
    pub fn not_a_member(client: ClientId, group: GroupId) -> Self {
        CoronaError::protocol(
            ErrorCode::NotAMember,
            format!("client {client} is not a member of {group}"),
        )
    }

    /// Convenience constructor for a "no such object" error.
    pub fn no_such_object(group: GroupId, object: ObjectId) -> Self {
        CoronaError::protocol(
            ErrorCode::NoSuchObject,
            format!("object {object} not found in {group}"),
        )
    }

    /// Returns the protocol error code, if this is a protocol error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            CoronaError::Protocol { code, .. } => Some(*code),
            _ => None,
        }
    }
}

impl fmt::Display for CoronaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoronaError::Protocol { code, detail } if detail.is_empty() => write!(f, "{code}"),
            CoronaError::Protocol { code, detail } => write!(f, "{code}: {detail}"),
            CoronaError::Codec(e) => write!(f, "codec error: {e}"),
            CoronaError::Io(e) => write!(f, "i/o error: {e}"),
            CoronaError::Disconnected => f.write_str("peer disconnected"),
            CoronaError::Timeout { operation } => write!(f, "timed out waiting for {operation}"),
            CoronaError::Closed => f.write_str("endpoint closed"),
            CoronaError::InvalidState(s) => write!(f, "invalid state: {s}"),
        }
    }
}

impl StdError for CoronaError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CoronaError::Codec(e) => Some(e),
            CoronaError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CoronaError {
    fn from(e: CodecError) -> Self {
        CoronaError::Codec(e)
    }
}

impl From<io::Error> for CoronaError {
    fn from(e: io::Error) -> Self {
        CoronaError::Io(e)
    }
}

/// Result alias used across the stack.
pub type Result<T, E = CoronaError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_code_wire_roundtrip() {
        for code in [
            ErrorCode::NoSuchGroup,
            ErrorCode::GroupExists,
            ErrorCode::NotAMember,
            ErrorCode::AlreadyMember,
            ErrorCode::PolicyDenied,
            ErrorCode::NoSuchObject,
            ErrorCode::LockHeld,
            ErrorCode::LockNotHeld,
            ErrorCode::BadReductionPoint,
            ErrorCode::Unsupported,
            ErrorCode::BadRequest,
            ErrorCode::ShuttingDown,
            ErrorCode::Unavailable,
        ] {
            assert_eq!(ErrorCode::from_wire(code.to_wire()), code);
        }
    }

    #[test]
    fn unknown_codes_decode_to_unknown() {
        assert_eq!(ErrorCode::from_wire(999), ErrorCode::Unknown);
        assert_eq!(ErrorCode::from_wire(0), ErrorCode::Unknown);
    }

    #[test]
    fn display_is_informative() {
        let e = CoronaError::no_such_group(GroupId::new(4));
        assert!(e.to_string().contains("g4"));
        let e = CoronaError::not_a_member(ClientId::new(1), GroupId::new(2));
        assert_eq!(e.code(), Some(ErrorCode::NotAMember));
        assert!(e.to_string().contains("c1"));
    }

    #[test]
    fn codec_error_display() {
        let e = CodecError::UnexpectedEof {
            needed: 4,
            remaining: 1,
        };
        assert!(e.to_string().contains("needed 4"));
        let e = CodecError::ChecksumMismatch {
            expected: 0xDEAD,
            actual: 0xBEEF,
        };
        assert!(e.to_string().contains("mismatch"));
    }

    #[test]
    fn error_conversions() {
        let io_err = io::Error::new(io::ErrorKind::BrokenPipe, "pipe");
        let e: CoronaError = io_err.into();
        assert!(matches!(e, CoronaError::Io(_)));
        let e: CoronaError = CodecError::InvalidUtf8.into();
        assert!(matches!(e, CoronaError::Codec(_)));
        assert!(e.source().is_some());
    }
}
