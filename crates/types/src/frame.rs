//! Stream framing: `len(u32 LE) ∥ crc32(u32 LE) ∥ body`.
//!
//! Used by the TCP transport for every message in both directions. The
//! CRC guards against corruption that slips past TCP's weak checksum
//! and, more importantly, gives the stable-storage log (which reuses
//! this format per record) torn-write detection.

use crate::crc32::crc32;
use crate::error::CodecError;
use bytes::Bytes;
use std::io::{self, Read, Write};

/// Maximum frame body accepted, matching the codec's declared-length
/// sanity limit.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of framing overhead per message (length + checksum).
pub const FRAME_HEADER_LEN: usize = 8;

/// Writes one frame to `w`. Does not flush; callers batch frames and
/// flush once per writer-loop iteration.
///
/// # Errors
///
/// Returns `InvalidInput` if the body exceeds [`MAX_FRAME_LEN`], or any
/// underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    if body.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame body of {} bytes exceeds limit", body.len()),
        ));
    }
    let header = frame_header(body);
    w.write_all(&header)?;
    w.write_all(body)
}

/// Builds the 8-byte header for `body`.
pub fn frame_header(body: &[u8]) -> [u8; FRAME_HEADER_LEN] {
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(body).to_le_bytes());
    header
}

/// Reads one frame from `r`.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer
/// closed the connection between messages).
///
/// # Errors
///
/// * `io::ErrorKind::UnexpectedEof` — the stream ended mid-frame;
/// * `io::ErrorKind::InvalidData` — length above [`MAX_FRAME_LEN`] or
///   checksum mismatch (wrapping a [`CodecError`]).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Bytes>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::CleanEof => return Ok(None),
        ReadOutcome::Filled => {}
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice"));
    let expected_crc = u32::from_le_bytes(header[4..].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            CodecError::LengthOverflow {
                declared: u64::from(len),
                limit: u64::from(MAX_FRAME_LEN),
            },
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let actual_crc = crc32(&body);
    if actual_crc != expected_crc {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            CodecError::ChecksumMismatch {
                expected: expected_crc,
                actual: actual_crc,
            },
        ));
    }
    Ok(Some(Bytes::from(body)))
}

enum ReadOutcome {
    Filled,
    CleanEof,
}

/// Like `read_exact`, but distinguishes "EOF before any byte" (clean
/// close) from "EOF mid-buffer" (truncated frame).
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::CleanEof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"third frame body").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().as_ref(), b"first");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap().as_ref(), b"");
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap().as_ref(),
            b"third frame body"
        );
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"sensitive payload").unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"cut me short").unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_header_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"x").unwrap();
        buf.truncate(5);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corrupt_checksum_field_is_detected() {
        // Corruption in the header's CRC field (not the body) must
        // fail the same way as body corruption.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf[5] ^= 0xFF;
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn torn_write_after_good_frames_stops_at_the_tear() {
        // Models a torn tail write in the stable-storage log: intact
        // records decode, the torn record surfaces as UnexpectedEof,
        // and nothing past the tear is fabricated.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"record-1").unwrap();
        write_frame(&mut buf, b"record-2").unwrap();
        let intact = buf.len();
        write_frame(&mut buf, b"torn record").unwrap();
        buf.truncate(intact + FRAME_HEADER_LEN + 4);
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap().as_ref(),
            b"record-1"
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap().unwrap().as_ref(),
            b"record-2"
        );
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn interrupted_reads_are_retried() {
        // A reader that yields Interrupted between every byte still
        // produces the frame.
        struct Stutter {
            data: Vec<u8>,
            pos: usize,
            interrupt: bool,
        }
        impl Read for Stutter {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.interrupt {
                    self.interrupt = false;
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
                }
                self.interrupt = true;
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut data = Vec::new();
        write_frame(&mut data, b"slow but sure").unwrap();
        let mut r = Stutter {
            data,
            pos: 0,
            interrupt: true,
        };
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap().as_ref(),
            b"slow but sure"
        );
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut header = Vec::new();
        header.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut Cursor::new(header)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn oversized_body_rejected_on_write() {
        struct NullWriter;
        impl Write for NullWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let body = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let err = write_frame(&mut NullWriter, &body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
