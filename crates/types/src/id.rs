//! Strongly-typed identifiers used throughout the Corona stack.
//!
//! The paper models the shared state of a group as a set
//! `S = {(O_1, S_1), ..., (O_n, S_n)}` where each `O_i` is a *unique
//! identifier* of a shared object. Groups, clients and (replicated)
//! servers likewise carry unique identifiers. Newtypes keep those id
//! spaces statically distinct (C-NEWTYPE).

use std::fmt;

macro_rules! u64_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Creates an identifier from its raw numeric value.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

u64_id!(
    /// Identifier of a communication group (the basic unit of
    /// communication in Corona).
    GroupId,
    "g"
);

u64_id!(
    /// Identifier of a shared object within a group's shared state.
    ObjectId,
    "o"
);

u64_id!(
    /// Identifier of a client process (a group member).
    ClientId,
    "c"
);

u64_id!(
    /// Identifier of a Corona server replica. In the replicated
    /// architecture the coordinator is the server with the special
    /// sequencer role, but it carries an ordinary [`ServerId`].
    ServerId,
    "s"
);

/// Per-group monotone sequence number assigned by the (logical) server.
///
/// Sequence numbers impose a total order on the multicast messages of a
/// group; they are also the basis of log reduction ("discard updates up
/// to sequence number n") and of client catch-up after reconnection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The sequence number before any update has been multicast.
    pub const ZERO: SeqNo = SeqNo(0);

    /// Creates a sequence number from its raw value.
    pub const fn new(raw: u64) -> Self {
        SeqNo(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the next sequence number.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the underlying `u64`, which cannot occur in
    /// practice (2^64 multicasts).
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0.checked_add(1).expect("sequence number overflow"))
    }

    /// Saturating distance from `earlier` to `self`.
    pub fn distance_from(self, earlier: SeqNo) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u64> for SeqNo {
    fn from(raw: u64) -> Self {
        SeqNo(raw)
    }
}

/// Epoch of a coordinator incarnation in the replicated service.
///
/// Every successful election increments the epoch; messages sequenced
/// under a stale epoch are rejected, which keeps a deposed coordinator
/// from corrupting the global order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The initial epoch of a freshly bootstrapped service.
    pub const ZERO: Epoch = Epoch(0);

    /// Returns the next epoch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Monotonically increasing source for fresh identifiers.
///
/// Servers use one allocator per id space (clients, groups created
/// without an explicit id, ...). The allocator is plain data and not
/// thread-safe on purpose: each allocator is owned by the single
/// dispatcher thread that needs it.
#[derive(Debug, Clone)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Creates an allocator that hands out ids starting at `first`.
    pub const fn starting_at(first: u64) -> Self {
        IdAllocator { next: first }
    }

    /// Returns the next raw id.
    pub fn allocate(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }
}

impl Default for IdAllocator {
    fn default() -> Self {
        IdAllocator::starting_at(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(GroupId::new(7).to_string(), "g7");
        assert_eq!(ObjectId::new(1).to_string(), "o1");
        assert_eq!(ClientId::new(12).to_string(), "c12");
        assert_eq!(ServerId::new(3).to_string(), "s3");
        assert_eq!(SeqNo::new(42).to_string(), "#42");
        assert_eq!(Epoch(2).to_string(), "e2");
    }

    #[test]
    fn seqno_next_and_distance() {
        let s = SeqNo::ZERO;
        assert_eq!(s.next(), SeqNo::new(1));
        assert_eq!(s.next().next().distance_from(s), 2);
        assert_eq!(s.distance_from(SeqNo::new(5)), 0, "saturates at zero");
    }

    #[test]
    fn epoch_ordering() {
        assert!(Epoch::ZERO < Epoch::ZERO.next());
    }

    #[test]
    fn allocator_is_monotone_and_unique() {
        let mut alloc = IdAllocator::default();
        let ids: Vec<u64> = (0..100).map(|_| alloc.allocate()).collect();
        let set: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ids[0], 1, "default allocator starts at 1");
    }

    #[test]
    fn ids_convert_to_and_from_u64() {
        let g: GroupId = 9u64.into();
        assert_eq!(u64::from(g), 9);
        assert_eq!(GroupId::new(9), g);
    }
}
