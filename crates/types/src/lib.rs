//! # corona-types
//!
//! Identifiers, the shared-state model, the wire protocol and the
//! binary codec for **Corona**, a reproduction of *"Stateful Group
//! Communication Services"* (Litiu & Prakash, ICDCS 1999).
//!
//! Corona is a group multicast service whose logical server is
//! *stateful*: it maintains an up-to-date, type-opaque copy of each
//! group's shared state — a set of `(object id, byte stream)` pairs —
//! so that joining clients receive the current state directly from the
//! service, without involving existing members.
//!
//! This crate is dependency-light by design: every other crate in the
//! workspace (state log, transports, server, replication, simulator)
//! builds on these definitions.
//!
//! ## Example
//!
//! ```
//! use corona_types::{
//!     id::{GroupId, ObjectId},
//!     state::{SharedState, StateUpdate},
//!     wire::{Decode, Encode},
//! };
//!
//! // A group's shared state is a set of opaque byte-stream objects.
//! let mut state = SharedState::from_objects([(ObjectId::new(1), &b"hello"[..])]);
//! state.apply(&StateUpdate::incremental(ObjectId::new(1), &b", world"[..]));
//! assert_eq!(
//!     state.object(ObjectId::new(1)).unwrap().materialize().as_ref(),
//!     b"hello, world"
//! );
//!
//! // Everything round-trips through the Corona binary codec.
//! let encoded = state.encode_to_vec();
//! assert_eq!(SharedState::decode_exact(&encoded).unwrap(), state);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod crc32;
pub mod error;
pub mod frame;
pub mod id;
pub mod message;
pub mod policy;
pub mod state;
pub mod wire;

pub use error::{CodecError, CoronaError, ErrorCode, Result};
pub use id::{ClientId, Epoch, GroupId, IdAllocator, ObjectId, SeqNo, ServerId};
pub use message::{ClientRequest, PeerMessage, ServerEvent, StateTransfer, PROTOCOL_VERSION};
pub use policy::{
    DeliveryScope, MemberInfo, MemberRole, MembershipChange, Persistence, StateTransferPolicy,
};
pub use state::{LoggedUpdate, ObjectState, SharedState, StateUpdate, Timestamp, UpdateKind};
pub use wire::{Decode, Encode};
