//! The Corona wire protocol.
//!
//! Three message families share one frame format:
//!
//! * [`ClientRequest`] — client → server,
//! * [`ServerEvent`] — server → client,
//! * [`PeerMessage`] — server ↔ server (replicated architecture, §4).
//!
//! Every variant is tagged with a stable byte; unknown tags fail
//! decoding with [`CodecError::InvalidTag`] rather than panicking, so a
//! server can survive version-skewed peers.

use crate::error::CodecError;
use crate::id::{ClientId, Epoch, GroupId, ObjectId, SeqNo, ServerId};
use crate::policy::{
    DeliveryScope, MemberInfo, MemberRole, MembershipChange, Persistence, StateTransferPolicy,
};
use crate::state::{LoggedUpdate, SharedState, StateUpdate, Timestamp};
use crate::wire::{
    decode_opt, decode_seq, encode_opt, encode_seq, Decode, Encode, Reader, WriteExt,
};
use bytes::{BufMut, Bytes, BytesMut};

/// Protocol version carried in `Hello`; bumped on incompatible change.
pub const PROTOCOL_VERSION: u16 = 1;

/// The state handed to a client on join / reconnect / explicit request.
///
/// `objects` carries materialised full object states; `updates` carries
/// logged updates to be applied *after* the objects. Which of the two
/// is populated depends on the [`StateTransferPolicy`] the client
/// chose. `basis` is the sequence number the transferred objects
/// reflect: applying `updates` (whose sequence numbers all exceed
/// `basis`) yields the state as of `through`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTransfer {
    /// Group the state belongs to.
    pub group: GroupId,
    /// Sequence number reflected by `objects`.
    pub basis: SeqNo,
    /// Sequence number reflected after also applying `updates`.
    pub through: SeqNo,
    /// Materialised object states.
    pub objects: Vec<(ObjectId, Bytes)>,
    /// Logged updates newer than `basis`.
    pub updates: Vec<LoggedUpdate>,
}

impl StateTransfer {
    /// An empty transfer (policy [`StateTransferPolicy::None`]).
    pub fn empty(group: GroupId, through: SeqNo) -> Self {
        StateTransfer {
            group,
            basis: through,
            through,
            objects: Vec::new(),
            updates: Vec::new(),
        }
    }

    /// Total payload bytes carried (objects plus update payloads).
    pub fn payload_len(&self) -> usize {
        self.objects.iter().map(|(_, b)| b.len()).sum::<usize>()
            + self
                .updates
                .iter()
                .map(LoggedUpdate::payload_len)
                .sum::<usize>()
    }

    /// Reconstructs a [`SharedState`] by installing the objects and
    /// then applying the updates in order.
    pub fn reconstruct(&self) -> SharedState {
        let mut state =
            SharedState::from_objects(self.objects.iter().map(|(id, b)| (*id, b.clone())));
        state.apply_all(&self.updates);
        state
    }
}

impl Encode for StateTransfer {
    fn encode(&self, buf: &mut BytesMut) {
        self.group.encode(buf);
        self.basis.encode(buf);
        self.through.encode(buf);
        encode_seq(&self.objects, buf);
        encode_seq(&self.updates, buf);
    }
}

impl Decode for StateTransfer {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(StateTransfer {
            group: GroupId::decode(reader)?,
            basis: SeqNo::decode(reader)?,
            through: SeqNo::decode(reader)?,
            objects: decode_seq(reader)?,
            updates: decode_seq(reader)?,
        })
    }
}

/// Requests a client may send to the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientRequest {
    /// First message on a connection. `resume` carries a previously
    /// assigned id when reconnecting after a failure, letting the
    /// server re-associate the client with its groups.
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// Display name for awareness services.
        display_name: String,
        /// Previously assigned id, if reconnecting.
        resume: Option<ClientId>,
    },
    /// Creates a group with an initial shared state (§3.2).
    CreateGroup {
        /// Id of the new group.
        group: GroupId,
        /// Persistent or transient lifetime.
        persistence: Persistence,
        /// Initial shared state as defined in §3.1.
        initial_state: SharedState,
    },
    /// Deletes a group; its shared state is lost (§3.2).
    DeleteGroup {
        /// The group to delete.
        group: GroupId,
    },
    /// Joins a group, requesting a state transfer under `policy`. The
    /// join protocol does not involve existing members (§3.2).
    Join {
        /// The group to join.
        group: GroupId,
        /// Principal or observer.
        role: MemberRole,
        /// Requested state-transfer policy.
        policy: StateTransferPolicy,
        /// Whether to receive membership change notifications.
        notify_membership: bool,
    },
    /// Leaves a group.
    Leave {
        /// The group to leave.
        group: GroupId,
    },
    /// Broadcasts a state update to the group (`bcastState` when
    /// `update.kind` is `SetState`, `bcastUpdate` otherwise).
    Broadcast {
        /// Target group.
        group: GroupId,
        /// The update to multicast and log.
        update: StateUpdate,
        /// Sender-inclusive or sender-exclusive delivery.
        scope: DeliveryScope,
    },
    /// Queries current membership (`getMembership`, §3.2).
    GetMembership {
        /// The queried group.
        group: GroupId,
    },
    /// Requests a (re-)transfer of state under a policy, without
    /// re-joining — used after reconnection.
    GetState {
        /// The queried group.
        group: GroupId,
        /// Requested state-transfer policy.
        policy: StateTransferPolicy,
    },
    /// Requests an exclusive lock on a shared object (the
    /// synchronisation service of §3.2).
    AcquireLock {
        /// Group holding the object.
        group: GroupId,
        /// Object to lock.
        object: ObjectId,
        /// If `true`, the request queues until the lock frees instead
        /// of being denied immediately.
        wait: bool,
    },
    /// Releases a previously acquired lock.
    ReleaseLock {
        /// Group holding the object.
        group: GroupId,
        /// Object to unlock.
        object: ObjectId,
    },
    /// Requests log reduction up to `through` (or a server-chosen
    /// point when `None`) — §3.2 "state log reduction service".
    ReduceLog {
        /// Group whose log should be reduced.
        group: GroupId,
        /// Reduce through this sequence number, if given.
        through: Option<SeqNo>,
    },
    /// Liveness probe; the server answers with `Pong`.
    Ping {
        /// Echoed back in the `Pong`.
        nonce: u64,
    },
    /// Graceful disconnect: the server removes the client from all
    /// groups before closing.
    Goodbye,
    /// Admin: requests the live health snapshot (alongside the
    /// metrics-oriented stats dump). The server answers with
    /// [`ServerEvent::Health`].
    GetHealth,
}

impl Encode for ClientRequest {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ClientRequest::Hello {
                version,
                display_name,
                resume,
            } => {
                buf.put_u8(0);
                buf.put_u16_le(*version);
                buf.put_len_str(display_name);
                encode_opt(resume, buf);
            }
            ClientRequest::CreateGroup {
                group,
                persistence,
                initial_state,
            } => {
                buf.put_u8(1);
                group.encode(buf);
                persistence.encode(buf);
                initial_state.encode(buf);
            }
            ClientRequest::DeleteGroup { group } => {
                buf.put_u8(2);
                group.encode(buf);
            }
            ClientRequest::Join {
                group,
                role,
                policy,
                notify_membership,
            } => {
                buf.put_u8(3);
                group.encode(buf);
                role.encode(buf);
                policy.encode(buf);
                buf.put_bool(*notify_membership);
            }
            ClientRequest::Leave { group } => {
                buf.put_u8(4);
                group.encode(buf);
            }
            ClientRequest::Broadcast {
                group,
                update,
                scope,
            } => {
                buf.put_u8(5);
                group.encode(buf);
                update.encode(buf);
                scope.encode(buf);
            }
            ClientRequest::GetMembership { group } => {
                buf.put_u8(6);
                group.encode(buf);
            }
            ClientRequest::GetState { group, policy } => {
                buf.put_u8(7);
                group.encode(buf);
                policy.encode(buf);
            }
            ClientRequest::AcquireLock {
                group,
                object,
                wait,
            } => {
                buf.put_u8(8);
                group.encode(buf);
                object.encode(buf);
                buf.put_bool(*wait);
            }
            ClientRequest::ReleaseLock { group, object } => {
                buf.put_u8(9);
                group.encode(buf);
                object.encode(buf);
            }
            ClientRequest::ReduceLog { group, through } => {
                buf.put_u8(10);
                group.encode(buf);
                encode_opt(through, buf);
            }
            ClientRequest::Ping { nonce } => {
                buf.put_u8(11);
                buf.put_varint(*nonce);
            }
            ClientRequest::Goodbye => buf.put_u8(12),
            ClientRequest::GetHealth => buf.put_u8(13),
        }
    }
}

impl Decode for ClientRequest {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.read_u8()? {
            0 => Ok(ClientRequest::Hello {
                version: reader.read_u16()?,
                display_name: reader.read_string()?,
                resume: decode_opt(reader)?,
            }),
            1 => Ok(ClientRequest::CreateGroup {
                group: GroupId::decode(reader)?,
                persistence: Persistence::decode(reader)?,
                initial_state: SharedState::decode(reader)?,
            }),
            2 => Ok(ClientRequest::DeleteGroup {
                group: GroupId::decode(reader)?,
            }),
            3 => Ok(ClientRequest::Join {
                group: GroupId::decode(reader)?,
                role: MemberRole::decode(reader)?,
                policy: StateTransferPolicy::decode(reader)?,
                notify_membership: reader.read_bool()?,
            }),
            4 => Ok(ClientRequest::Leave {
                group: GroupId::decode(reader)?,
            }),
            5 => Ok(ClientRequest::Broadcast {
                group: GroupId::decode(reader)?,
                update: StateUpdate::decode(reader)?,
                scope: DeliveryScope::decode(reader)?,
            }),
            6 => Ok(ClientRequest::GetMembership {
                group: GroupId::decode(reader)?,
            }),
            7 => Ok(ClientRequest::GetState {
                group: GroupId::decode(reader)?,
                policy: StateTransferPolicy::decode(reader)?,
            }),
            8 => Ok(ClientRequest::AcquireLock {
                group: GroupId::decode(reader)?,
                object: ObjectId::decode(reader)?,
                wait: reader.read_bool()?,
            }),
            9 => Ok(ClientRequest::ReleaseLock {
                group: GroupId::decode(reader)?,
                object: ObjectId::decode(reader)?,
            }),
            10 => Ok(ClientRequest::ReduceLog {
                group: GroupId::decode(reader)?,
                through: decode_opt(reader)?,
            }),
            11 => Ok(ClientRequest::Ping {
                nonce: reader.read_varint()?,
            }),
            12 => Ok(ClientRequest::Goodbye),
            13 => Ok(ClientRequest::GetHealth),
            tag => Err(CodecError::InvalidTag {
                context: "ClientRequest",
                tag,
            }),
        }
    }
}

/// Events and replies the service sends to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerEvent {
    /// Reply to `Hello`: the id assigned (or re-confirmed) for this
    /// client, and the id of the serving replica.
    Welcome {
        /// Serving replica.
        server: ServerId,
        /// Assigned client id.
        client: ClientId,
        /// Protocol version the server speaks.
        version: u16,
    },
    /// A group was created on behalf of this client.
    GroupCreated {
        /// The new group.
        group: GroupId,
    },
    /// A group was deleted (reply, or notification to its members).
    GroupDeleted {
        /// The deleted group.
        group: GroupId,
    },
    /// Reply to `Join`: membership snapshot plus the state transfer
    /// produced by the requested policy.
    Joined {
        /// Current members (including the new one).
        members: Vec<MemberInfo>,
        /// The transferred state.
        transfer: StateTransfer,
    },
    /// Reply to `Leave`.
    Left {
        /// The group left.
        group: GroupId,
    },
    /// Reply to `GetState`.
    State {
        /// The transferred state.
        transfer: StateTransfer,
    },
    /// A sequenced group multicast (the data path).
    Multicast {
        /// Group the update belongs to.
        group: GroupId,
        /// The sequenced update.
        logged: LoggedUpdate,
    },
    /// Membership change notification (only sent to members that
    /// subscribed with `notify_membership`).
    MembershipChanged {
        /// Group whose membership changed.
        group: GroupId,
        /// The change.
        change: MembershipChange,
        /// Display info for the affected client.
        info: MemberInfo,
    },
    /// Reply to `GetMembership`.
    Membership {
        /// The queried group.
        group: GroupId,
        /// Current members.
        members: Vec<MemberInfo>,
    },
    /// A lock request succeeded.
    LockGranted {
        /// Group holding the object.
        group: GroupId,
        /// The locked object.
        object: ObjectId,
    },
    /// A non-waiting lock request failed.
    LockDenied {
        /// Group holding the object.
        group: GroupId,
        /// The contended object.
        object: ObjectId,
        /// Current holder.
        holder: ClientId,
    },
    /// A lock was released (reply to `ReleaseLock`).
    LockReleased {
        /// Group holding the object.
        group: GroupId,
        /// The unlocked object.
        object: ObjectId,
    },
    /// The group's log was reduced; clients relying on `UpdatesSince`
    /// older than `through` must fall back to a fuller policy.
    LogReduced {
        /// Group whose log was reduced.
        group: GroupId,
        /// Updates at or below this sequence number were folded into
        /// the checkpoint.
        through: SeqNo,
    },
    /// An error reply.
    Error {
        /// Stable error code (see
        /// [`ErrorCode`](crate::error::ErrorCode)).
        code: u16,
        /// Human-readable detail.
        detail: String,
    },
    /// Reply to `Ping`.
    Pong {
        /// Echo of the request nonce.
        nonce: u64,
        /// Server receive timestamp, for client RTT estimation.
        at: Timestamp,
    },
    /// The current replica roster, pushed on join and whenever an
    /// election resolves. Clients keep the latest copy so that on
    /// disconnect they know every address they can fail over to (§4).
    Roster {
        /// Epoch of this configuration; clients keep the highest seen.
        epoch: Epoch,
        /// The acting coordinator (sequencer).
        coordinator: ServerId,
        /// Live servers and their client-dialable addresses.
        servers: Vec<(ServerId, String)>,
    },
    /// Reply to `GetHealth`: the versioned health-plane snapshot.
    /// Carried as opaque JSON so the schema can evolve without wire
    /// changes; `schema` lets scrapers reject unknown layouts cheaply.
    Health {
        /// Health-snapshot schema version.
        schema: u16,
        /// The snapshot, one JSON object.
        json: String,
    },
}

impl Encode for ServerEvent {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            ServerEvent::Welcome {
                server,
                client,
                version,
            } => {
                buf.put_u8(0);
                server.encode(buf);
                client.encode(buf);
                buf.put_u16_le(*version);
            }
            ServerEvent::GroupCreated { group } => {
                buf.put_u8(1);
                group.encode(buf);
            }
            ServerEvent::GroupDeleted { group } => {
                buf.put_u8(2);
                group.encode(buf);
            }
            ServerEvent::Joined { members, transfer } => {
                buf.put_u8(3);
                encode_seq(members, buf);
                transfer.encode(buf);
            }
            ServerEvent::Left { group } => {
                buf.put_u8(4);
                group.encode(buf);
            }
            ServerEvent::State { transfer } => {
                buf.put_u8(5);
                transfer.encode(buf);
            }
            ServerEvent::Multicast { group, logged } => {
                buf.put_u8(6);
                group.encode(buf);
                logged.encode(buf);
            }
            ServerEvent::MembershipChanged {
                group,
                change,
                info,
            } => {
                buf.put_u8(7);
                group.encode(buf);
                change.encode(buf);
                info.encode(buf);
            }
            ServerEvent::Membership { group, members } => {
                buf.put_u8(8);
                group.encode(buf);
                encode_seq(members, buf);
            }
            ServerEvent::LockGranted { group, object } => {
                buf.put_u8(9);
                group.encode(buf);
                object.encode(buf);
            }
            ServerEvent::LockDenied {
                group,
                object,
                holder,
            } => {
                buf.put_u8(10);
                group.encode(buf);
                object.encode(buf);
                holder.encode(buf);
            }
            ServerEvent::LockReleased { group, object } => {
                buf.put_u8(11);
                group.encode(buf);
                object.encode(buf);
            }
            ServerEvent::LogReduced { group, through } => {
                buf.put_u8(12);
                group.encode(buf);
                through.encode(buf);
            }
            ServerEvent::Error { code, detail } => {
                buf.put_u8(13);
                buf.put_u16_le(*code);
                buf.put_len_str(detail);
            }
            ServerEvent::Pong { nonce, at } => {
                buf.put_u8(14);
                buf.put_varint(*nonce);
                at.encode(buf);
            }
            ServerEvent::Roster {
                epoch,
                coordinator,
                servers,
            } => {
                buf.put_u8(15);
                epoch.encode(buf);
                coordinator.encode(buf);
                encode_seq(servers, buf);
            }
            ServerEvent::Health { schema, json } => {
                buf.put_u8(16);
                buf.put_u16_le(*schema);
                buf.put_len_str(json);
            }
        }
    }
}

impl Decode for ServerEvent {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.read_u8()? {
            0 => Ok(ServerEvent::Welcome {
                server: ServerId::decode(reader)?,
                client: ClientId::decode(reader)?,
                version: reader.read_u16()?,
            }),
            1 => Ok(ServerEvent::GroupCreated {
                group: GroupId::decode(reader)?,
            }),
            2 => Ok(ServerEvent::GroupDeleted {
                group: GroupId::decode(reader)?,
            }),
            3 => Ok(ServerEvent::Joined {
                members: decode_seq(reader)?,
                transfer: StateTransfer::decode(reader)?,
            }),
            4 => Ok(ServerEvent::Left {
                group: GroupId::decode(reader)?,
            }),
            5 => Ok(ServerEvent::State {
                transfer: StateTransfer::decode(reader)?,
            }),
            6 => Ok(ServerEvent::Multicast {
                group: GroupId::decode(reader)?,
                logged: LoggedUpdate::decode(reader)?,
            }),
            7 => Ok(ServerEvent::MembershipChanged {
                group: GroupId::decode(reader)?,
                change: MembershipChange::decode(reader)?,
                info: MemberInfo::decode(reader)?,
            }),
            8 => Ok(ServerEvent::Membership {
                group: GroupId::decode(reader)?,
                members: decode_seq(reader)?,
            }),
            9 => Ok(ServerEvent::LockGranted {
                group: GroupId::decode(reader)?,
                object: ObjectId::decode(reader)?,
            }),
            10 => Ok(ServerEvent::LockDenied {
                group: GroupId::decode(reader)?,
                object: ObjectId::decode(reader)?,
                holder: ClientId::decode(reader)?,
            }),
            11 => Ok(ServerEvent::LockReleased {
                group: GroupId::decode(reader)?,
                object: ObjectId::decode(reader)?,
            }),
            12 => Ok(ServerEvent::LogReduced {
                group: GroupId::decode(reader)?,
                through: SeqNo::decode(reader)?,
            }),
            13 => Ok(ServerEvent::Error {
                code: reader.read_u16()?,
                detail: reader.read_string()?,
            }),
            14 => Ok(ServerEvent::Pong {
                nonce: reader.read_varint()?,
                at: Timestamp::decode(reader)?,
            }),
            15 => Ok(ServerEvent::Roster {
                epoch: Epoch::decode(reader)?,
                coordinator: ServerId::decode(reader)?,
                servers: decode_seq(reader)?,
            }),
            16 => Ok(ServerEvent::Health {
                schema: reader.read_u16()?,
                json: reader.read_string()?,
            }),
            tag => Err(CodecError::InvalidTag {
                context: "ServerEvent",
                tag,
            }),
        }
    }
}

/// Messages exchanged between server replicas and the coordinator in
/// the star-topology replicated architecture (§4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerMessage {
    /// A server introduces itself to a peer.
    ServerHello {
        /// The connecting server.
        server: ServerId,
    },
    /// Heartbeat from the coordinator to a server or vice versa.
    Heartbeat {
        /// Sending server.
        from: ServerId,
        /// Coordinator epoch the sender believes in.
        epoch: Epoch,
    },
    /// A server forwards a client broadcast to the coordinator for
    /// global sequencing.
    ForwardBroadcast {
        /// Server that received the client request.
        origin: ServerId,
        /// The submitting client.
        sender: ClientId,
        /// Target group.
        group: GroupId,
        /// The update.
        update: StateUpdate,
        /// Delivery scope.
        scope: DeliveryScope,
        /// Origin-local tag so the origin can match the sequenced copy
        /// with its pending local delivery.
        local_tag: u64,
    },
    /// The coordinator distributes a globally sequenced update to every
    /// server hosting members of the group.
    Sequenced {
        /// Target group.
        group: GroupId,
        /// Coordinator epoch under which the sequence was assigned.
        epoch: Epoch,
        /// Sequenced update.
        logged: LoggedUpdate,
        /// Delivery scope (sender exclusion handled at the origin).
        scope: DeliveryScope,
        /// Origin server and tag for dedup at the origin.
        origin: ServerId,
        /// Origin-local tag (see `ForwardBroadcast`).
        local_tag: u64,
    },
    /// A server announces it now hosts (or no longer hosts) members of
    /// a group — the coordinator routes `Sequenced` only to hosting
    /// servers (§4.1).
    GroupHosting {
        /// The announcing server.
        server: ServerId,
        /// The group.
        group: GroupId,
        /// `true` when the server starts hosting, `false` when its last
        /// member leaves.
        hosting: bool,
    },
    /// Membership delta propagated between replicas.
    MembershipSync {
        /// The group.
        group: GroupId,
        /// The change.
        change: MembershipChange,
        /// Display info of the affected client.
        info: MemberInfo,
    },
    /// A replica asks a peer for a group's state (used when a server
    /// starts hosting a group it has no copy of, and as the hot-standby
    /// backup protocol).
    GroupStateQuery {
        /// Requesting server.
        from: ServerId,
        /// The group.
        group: GroupId,
    },
    /// Reply to [`PeerMessage::GroupStateQuery`]; also sent unsolicited
    /// to a freshly elected coordinator so it can rebuild authoritative
    /// state from the hot-standby copies (§4.1: "at least two copies of
    /// the state exist at any moment").
    GroupStateReply {
        /// The replying server.
        from: ServerId,
        /// The group.
        group: GroupId,
        /// Lifetime semantics.
        persistence: Persistence,
        /// Sequence number reflected by `state`.
        through: SeqNo,
        /// Full shared state.
        state: SharedState,
        /// Suffix of the update log (for catch-up).
        updates: Vec<LoggedUpdate>,
    },
    /// A server forwards a client *control* request (create, join,
    /// leave, locks, ...) to the coordinator, which executes it against
    /// the authoritative state. Data broadcasts use the optimised
    /// [`PeerMessage::ForwardBroadcast`] path instead.
    ForwardRequest {
        /// Server that received the client request.
        origin: ServerId,
        /// The requesting client.
        client: ClientId,
        /// Matches the reply ([`PeerMessage::RequestOutcome`]) to the
        /// origin's pending call.
        local_tag: u64,
        /// The forwarded request.
        request: ClientRequest,
    },
    /// The coordinator returns the events a forwarded request produced
    /// for the requesting client; side-effects for other clients travel
    /// as separate [`PeerMessage::Deliver`] messages.
    RequestOutcome {
        /// Origin server of the forwarded request.
        origin: ServerId,
        /// Echo of the forward tag.
        local_tag: u64,
        /// The requesting client.
        client: ClientId,
        /// Events addressed to the requesting client.
        events: Vec<ServerEvent>,
    },
    /// The coordinator routes an event to a client homed on another
    /// server (membership notifications, lock grants, deletion
    /// notices).
    Deliver {
        /// Destination client.
        client: ClientId,
        /// The event.
        event: ServerEvent,
    },
    /// Post-election resync: a replica re-announces one of its local
    /// members to the new coordinator.
    MemberAnnounce {
        /// The announcing server.
        server: ServerId,
        /// The group.
        group: GroupId,
        /// Lifetime semantics the replica recorded for the group.
        persistence: Persistence,
        /// The member.
        info: MemberInfo,
        /// Whether the member subscribed to membership notifications.
        notify: bool,
    },
    /// A server claims coordinatorship after detecting coordinator
    /// failure (§4.2).
    ElectionClaim {
        /// The claiming server.
        candidate: ServerId,
        /// Epoch the candidate proposes (current + 1).
        epoch: Epoch,
    },
    /// A server acknowledges an election claim.
    ElectionAck {
        /// The acknowledging server.
        voter: ServerId,
        /// Epoch being acknowledged.
        epoch: Epoch,
    },
    /// A server rejects an election claim ("the first server wrongfully
    /// assumes that the coordinator is down ... will respond with a
    /// nack", §4.2).
    ElectionNack {
        /// The rejecting server.
        voter: ServerId,
        /// The rejected epoch.
        epoch: Epoch,
        /// Who the rejecting server believes is coordinator.
        current_coordinator: ServerId,
    },
    /// The (new) coordinator publishes the authoritative server list,
    /// sorted by startup order (§4.2).
    ServerList {
        /// Epoch of this configuration.
        epoch: Epoch,
        /// The coordinator.
        coordinator: ServerId,
        /// All live servers in startup order.
        servers: Vec<ServerId>,
    },
    /// A replica announces a checkpoint so peers can reduce their logs
    /// consistently (used by partition merge to find the last globally
    /// consistent state).
    CheckpointAnnounce {
        /// The group.
        group: GroupId,
        /// Checkpointed through this sequence number.
        through: SeqNo,
    },
    /// A follower acknowledges a coordinator heartbeat. The coordinator
    /// counts fresh acks to maintain its quorum lease: without acks
    /// from a majority of the configured roster it fences itself and
    /// stops sequencing (partition write fencing).
    HeartbeatAck {
        /// The acknowledging server.
        from: ServerId,
        /// Epoch the acknowledging server is following.
        epoch: Epoch,
    },
}

impl Encode for PeerMessage {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PeerMessage::ServerHello { server } => {
                buf.put_u8(0);
                server.encode(buf);
            }
            PeerMessage::Heartbeat { from, epoch } => {
                buf.put_u8(1);
                from.encode(buf);
                epoch.encode(buf);
            }
            PeerMessage::ForwardBroadcast {
                origin,
                sender,
                group,
                update,
                scope,
                local_tag,
            } => {
                buf.put_u8(2);
                origin.encode(buf);
                sender.encode(buf);
                group.encode(buf);
                update.encode(buf);
                scope.encode(buf);
                buf.put_varint(*local_tag);
            }
            PeerMessage::Sequenced {
                group,
                epoch,
                logged,
                scope,
                origin,
                local_tag,
            } => {
                buf.put_u8(3);
                group.encode(buf);
                epoch.encode(buf);
                logged.encode(buf);
                scope.encode(buf);
                origin.encode(buf);
                buf.put_varint(*local_tag);
            }
            PeerMessage::GroupHosting {
                server,
                group,
                hosting,
            } => {
                buf.put_u8(4);
                server.encode(buf);
                group.encode(buf);
                buf.put_bool(*hosting);
            }
            PeerMessage::MembershipSync {
                group,
                change,
                info,
            } => {
                buf.put_u8(5);
                group.encode(buf);
                change.encode(buf);
                info.encode(buf);
            }
            PeerMessage::GroupStateQuery { from, group } => {
                buf.put_u8(6);
                from.encode(buf);
                group.encode(buf);
            }
            PeerMessage::GroupStateReply {
                from,
                group,
                persistence,
                through,
                state,
                updates,
            } => {
                buf.put_u8(7);
                from.encode(buf);
                group.encode(buf);
                persistence.encode(buf);
                through.encode(buf);
                state.encode(buf);
                encode_seq(updates, buf);
            }
            PeerMessage::ForwardRequest {
                origin,
                client,
                local_tag,
                request,
            } => {
                buf.put_u8(13);
                origin.encode(buf);
                client.encode(buf);
                buf.put_varint(*local_tag);
                request.encode(buf);
            }
            PeerMessage::RequestOutcome {
                origin,
                local_tag,
                client,
                events,
            } => {
                buf.put_u8(14);
                origin.encode(buf);
                buf.put_varint(*local_tag);
                client.encode(buf);
                encode_seq(events, buf);
            }
            PeerMessage::Deliver { client, event } => {
                buf.put_u8(15);
                client.encode(buf);
                event.encode(buf);
            }
            PeerMessage::MemberAnnounce {
                server,
                group,
                persistence,
                info,
                notify,
            } => {
                buf.put_u8(16);
                server.encode(buf);
                group.encode(buf);
                persistence.encode(buf);
                info.encode(buf);
                buf.put_bool(*notify);
            }
            PeerMessage::ElectionClaim { candidate, epoch } => {
                buf.put_u8(8);
                candidate.encode(buf);
                epoch.encode(buf);
            }
            PeerMessage::ElectionAck { voter, epoch } => {
                buf.put_u8(9);
                voter.encode(buf);
                epoch.encode(buf);
            }
            PeerMessage::ElectionNack {
                voter,
                epoch,
                current_coordinator,
            } => {
                buf.put_u8(10);
                voter.encode(buf);
                epoch.encode(buf);
                current_coordinator.encode(buf);
            }
            PeerMessage::ServerList {
                epoch,
                coordinator,
                servers,
            } => {
                buf.put_u8(11);
                epoch.encode(buf);
                coordinator.encode(buf);
                encode_seq(servers, buf);
            }
            PeerMessage::CheckpointAnnounce { group, through } => {
                buf.put_u8(12);
                group.encode(buf);
                through.encode(buf);
            }
            PeerMessage::HeartbeatAck { from, epoch } => {
                buf.put_u8(17);
                from.encode(buf);
                epoch.encode(buf);
            }
        }
    }
}

impl Decode for PeerMessage {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.read_u8()? {
            0 => Ok(PeerMessage::ServerHello {
                server: ServerId::decode(reader)?,
            }),
            1 => Ok(PeerMessage::Heartbeat {
                from: ServerId::decode(reader)?,
                epoch: Epoch::decode(reader)?,
            }),
            2 => Ok(PeerMessage::ForwardBroadcast {
                origin: ServerId::decode(reader)?,
                sender: ClientId::decode(reader)?,
                group: GroupId::decode(reader)?,
                update: StateUpdate::decode(reader)?,
                scope: DeliveryScope::decode(reader)?,
                local_tag: reader.read_varint()?,
            }),
            3 => Ok(PeerMessage::Sequenced {
                group: GroupId::decode(reader)?,
                epoch: Epoch::decode(reader)?,
                logged: LoggedUpdate::decode(reader)?,
                scope: DeliveryScope::decode(reader)?,
                origin: ServerId::decode(reader)?,
                local_tag: reader.read_varint()?,
            }),
            4 => Ok(PeerMessage::GroupHosting {
                server: ServerId::decode(reader)?,
                group: GroupId::decode(reader)?,
                hosting: reader.read_bool()?,
            }),
            5 => Ok(PeerMessage::MembershipSync {
                group: GroupId::decode(reader)?,
                change: MembershipChange::decode(reader)?,
                info: MemberInfo::decode(reader)?,
            }),
            6 => Ok(PeerMessage::GroupStateQuery {
                from: ServerId::decode(reader)?,
                group: GroupId::decode(reader)?,
            }),
            7 => Ok(PeerMessage::GroupStateReply {
                from: ServerId::decode(reader)?,
                group: GroupId::decode(reader)?,
                persistence: Persistence::decode(reader)?,
                through: SeqNo::decode(reader)?,
                state: SharedState::decode(reader)?,
                updates: decode_seq(reader)?,
            }),
            8 => Ok(PeerMessage::ElectionClaim {
                candidate: ServerId::decode(reader)?,
                epoch: Epoch::decode(reader)?,
            }),
            9 => Ok(PeerMessage::ElectionAck {
                voter: ServerId::decode(reader)?,
                epoch: Epoch::decode(reader)?,
            }),
            10 => Ok(PeerMessage::ElectionNack {
                voter: ServerId::decode(reader)?,
                epoch: Epoch::decode(reader)?,
                current_coordinator: ServerId::decode(reader)?,
            }),
            11 => Ok(PeerMessage::ServerList {
                epoch: Epoch::decode(reader)?,
                coordinator: ServerId::decode(reader)?,
                servers: decode_seq(reader)?,
            }),
            12 => Ok(PeerMessage::CheckpointAnnounce {
                group: GroupId::decode(reader)?,
                through: SeqNo::decode(reader)?,
            }),
            13 => Ok(PeerMessage::ForwardRequest {
                origin: ServerId::decode(reader)?,
                client: ClientId::decode(reader)?,
                local_tag: reader.read_varint()?,
                request: ClientRequest::decode(reader)?,
            }),
            14 => Ok(PeerMessage::RequestOutcome {
                origin: ServerId::decode(reader)?,
                local_tag: reader.read_varint()?,
                client: ClientId::decode(reader)?,
                events: decode_seq(reader)?,
            }),
            15 => Ok(PeerMessage::Deliver {
                client: ClientId::decode(reader)?,
                event: ServerEvent::decode(reader)?,
            }),
            16 => Ok(PeerMessage::MemberAnnounce {
                server: ServerId::decode(reader)?,
                group: GroupId::decode(reader)?,
                persistence: Persistence::decode(reader)?,
                info: MemberInfo::decode(reader)?,
                notify: reader.read_bool()?,
            }),
            17 => Ok(PeerMessage::HeartbeatAck {
                from: ServerId::decode(reader)?,
                epoch: Epoch::decode(reader)?,
            }),
            tag => Err(CodecError::InvalidTag {
                context: "PeerMessage",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.encode_to_vec();
        assert_eq!(T::decode_exact(&bytes).unwrap(), value);
    }

    fn sample_logged(seq: u64) -> LoggedUpdate {
        LoggedUpdate {
            seq: SeqNo::new(seq),
            sender: ClientId::new(3),
            timestamp: Timestamp::from_micros(1000 + seq),
            update: StateUpdate::incremental(ObjectId::new(1), &b"delta"[..]),
        }
    }

    #[test]
    fn state_transfer_roundtrip_and_reconstruct() {
        let transfer = StateTransfer {
            group: GroupId::new(1),
            basis: SeqNo::new(10),
            through: SeqNo::new(12),
            objects: vec![(ObjectId::new(1), Bytes::from_static(b"base"))],
            updates: vec![sample_logged(11), sample_logged(12)],
        };
        roundtrip(transfer.clone());
        let state = transfer.reconstruct();
        assert_eq!(
            state.object(ObjectId::new(1)).unwrap().materialize(),
            Bytes::from_static(b"basedeltadelta")
        );
        assert_eq!(transfer.payload_len(), 4 + 5 + 5);
    }

    #[test]
    fn empty_transfer() {
        let t = StateTransfer::empty(GroupId::new(2), SeqNo::new(5));
        assert_eq!(t.basis, t.through);
        assert_eq!(t.payload_len(), 0);
        assert!(t.reconstruct().is_empty());
    }

    #[test]
    fn client_request_roundtrips() {
        let requests = vec![
            ClientRequest::Hello {
                version: PROTOCOL_VERSION,
                display_name: "alice".into(),
                resume: Some(ClientId::new(9)),
            },
            ClientRequest::CreateGroup {
                group: GroupId::new(1),
                persistence: Persistence::Persistent,
                initial_state: SharedState::from_objects([(ObjectId::new(1), &b"hello"[..])]),
            },
            ClientRequest::DeleteGroup {
                group: GroupId::new(1),
            },
            ClientRequest::Join {
                group: GroupId::new(1),
                role: MemberRole::Observer,
                policy: StateTransferPolicy::LastUpdates(10),
                notify_membership: true,
            },
            ClientRequest::Leave {
                group: GroupId::new(1),
            },
            ClientRequest::Broadcast {
                group: GroupId::new(1),
                update: StateUpdate::set_state(ObjectId::new(2), &b"new"[..]),
                scope: DeliveryScope::SenderExclusive,
            },
            ClientRequest::GetMembership {
                group: GroupId::new(1),
            },
            ClientRequest::GetState {
                group: GroupId::new(1),
                policy: StateTransferPolicy::UpdatesSince(SeqNo::new(4)),
            },
            ClientRequest::AcquireLock {
                group: GroupId::new(1),
                object: ObjectId::new(2),
                wait: true,
            },
            ClientRequest::ReleaseLock {
                group: GroupId::new(1),
                object: ObjectId::new(2),
            },
            ClientRequest::ReduceLog {
                group: GroupId::new(1),
                through: Some(SeqNo::new(30)),
            },
            ClientRequest::Ping { nonce: 77 },
            ClientRequest::Goodbye,
            ClientRequest::GetHealth,
        ];
        for req in requests {
            roundtrip(req);
        }
    }

    #[test]
    fn server_event_roundtrips() {
        let events = vec![
            ServerEvent::Welcome {
                server: ServerId::new(1),
                client: ClientId::new(2),
                version: PROTOCOL_VERSION,
            },
            ServerEvent::GroupCreated {
                group: GroupId::new(3),
            },
            ServerEvent::GroupDeleted {
                group: GroupId::new(3),
            },
            ServerEvent::Joined {
                members: vec![MemberInfo::new(
                    ClientId::new(1),
                    MemberRole::Principal,
                    "a",
                )],
                transfer: StateTransfer::empty(GroupId::new(3), SeqNo::ZERO),
            },
            ServerEvent::Left {
                group: GroupId::new(3),
            },
            ServerEvent::State {
                transfer: StateTransfer::empty(GroupId::new(3), SeqNo::new(2)),
            },
            ServerEvent::Multicast {
                group: GroupId::new(3),
                logged: sample_logged(7),
            },
            ServerEvent::MembershipChanged {
                group: GroupId::new(3),
                change: MembershipChange::Left(ClientId::new(5)),
                info: MemberInfo::new(ClientId::new(5), MemberRole::Principal, "bob"),
            },
            ServerEvent::Membership {
                group: GroupId::new(3),
                members: vec![],
            },
            ServerEvent::LockGranted {
                group: GroupId::new(3),
                object: ObjectId::new(1),
            },
            ServerEvent::LockDenied {
                group: GroupId::new(3),
                object: ObjectId::new(1),
                holder: ClientId::new(8),
            },
            ServerEvent::LockReleased {
                group: GroupId::new(3),
                object: ObjectId::new(1),
            },
            ServerEvent::LogReduced {
                group: GroupId::new(3),
                through: SeqNo::new(100),
            },
            ServerEvent::Error {
                code: 3,
                detail: "not a member".into(),
            },
            ServerEvent::Pong {
                nonce: 1,
                at: Timestamp::from_micros(5),
            },
            ServerEvent::Roster {
                epoch: Epoch(4),
                coordinator: ServerId::new(2),
                servers: vec![
                    (ServerId::new(2), "s2:7000".to_string()),
                    (ServerId::new(3), "s3:7000".to_string()),
                ],
            },
            ServerEvent::Health {
                schema: 1,
                json: "{\"schema\":1,\"seq\":7}".to_string(),
            },
        ];
        for ev in events {
            roundtrip(ev);
        }
    }

    #[test]
    fn peer_message_roundtrips() {
        let messages = vec![
            PeerMessage::ServerHello {
                server: ServerId::new(1),
            },
            PeerMessage::Heartbeat {
                from: ServerId::new(1),
                epoch: Epoch(3),
            },
            PeerMessage::ForwardBroadcast {
                origin: ServerId::new(2),
                sender: ClientId::new(9),
                group: GroupId::new(1),
                update: StateUpdate::incremental(ObjectId::new(1), &b"x"[..]),
                scope: DeliveryScope::SenderInclusive,
                local_tag: 55,
            },
            PeerMessage::Sequenced {
                group: GroupId::new(1),
                epoch: Epoch(3),
                logged: sample_logged(8),
                scope: DeliveryScope::SenderExclusive,
                origin: ServerId::new(2),
                local_tag: 55,
            },
            PeerMessage::GroupHosting {
                server: ServerId::new(2),
                group: GroupId::new(1),
                hosting: true,
            },
            PeerMessage::MembershipSync {
                group: GroupId::new(1),
                change: MembershipChange::Joined(ClientId::new(4)),
                info: MemberInfo::new(ClientId::new(4), MemberRole::Principal, "d"),
            },
            PeerMessage::GroupStateQuery {
                from: ServerId::new(3),
                group: GroupId::new(1),
            },
            PeerMessage::GroupStateReply {
                from: ServerId::new(4),
                group: GroupId::new(1),
                persistence: Persistence::Persistent,
                through: SeqNo::new(20),
                state: SharedState::from_objects([(ObjectId::new(1), &b"s"[..])]),
                updates: vec![sample_logged(21)],
            },
            PeerMessage::ForwardRequest {
                origin: ServerId::new(2),
                client: ClientId::new(9),
                local_tag: 3,
                request: ClientRequest::Leave {
                    group: GroupId::new(1),
                },
            },
            PeerMessage::RequestOutcome {
                origin: ServerId::new(2),
                local_tag: 3,
                client: ClientId::new(9),
                events: vec![ServerEvent::Left {
                    group: GroupId::new(1),
                }],
            },
            PeerMessage::Deliver {
                client: ClientId::new(9),
                event: ServerEvent::GroupDeleted {
                    group: GroupId::new(1),
                },
            },
            PeerMessage::MemberAnnounce {
                server: ServerId::new(2),
                group: GroupId::new(1),
                persistence: Persistence::Transient,
                info: MemberInfo::new(ClientId::new(9), MemberRole::Principal, "z"),
                notify: true,
            },
            PeerMessage::ElectionClaim {
                candidate: ServerId::new(2),
                epoch: Epoch(4),
            },
            PeerMessage::ElectionAck {
                voter: ServerId::new(3),
                epoch: Epoch(4),
            },
            PeerMessage::ElectionNack {
                voter: ServerId::new(3),
                epoch: Epoch(4),
                current_coordinator: ServerId::new(1),
            },
            PeerMessage::ServerList {
                epoch: Epoch(4),
                coordinator: ServerId::new(2),
                servers: vec![ServerId::new(2), ServerId::new(3)],
            },
            PeerMessage::CheckpointAnnounce {
                group: GroupId::new(1),
                through: SeqNo::new(50),
            },
            PeerMessage::HeartbeatAck {
                from: ServerId::new(3),
                epoch: Epoch(4),
            },
        ];
        for msg in messages {
            roundtrip(msg);
        }
    }

    #[test]
    fn unknown_tags_fail_cleanly() {
        assert!(matches!(
            ClientRequest::decode_exact(&[200]),
            Err(CodecError::InvalidTag {
                context: "ClientRequest",
                tag: 200
            })
        ));
        assert!(ServerEvent::decode_exact(&[200]).is_err());
        assert!(PeerMessage::decode_exact(&[200]).is_err());
    }

    #[test]
    fn truncated_messages_fail_cleanly() {
        let full = ClientRequest::Broadcast {
            group: GroupId::new(1),
            update: StateUpdate::incremental(ObjectId::new(1), &b"payload"[..]),
            scope: DeliveryScope::SenderInclusive,
        }
        .encode_to_vec();
        for cut in 0..full.len() {
            assert!(
                ClientRequest::decode_exact(&full[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }
}
