//! Client-selectable policies: state transfer, delivery scope, group
//! persistence and member roles.
//!
//! A central claim of the paper is *customised state transfer*: "based
//! on the speed of its connection to the server and application
//! characteristics, the client may request either to receive the whole
//! state of the group or the latest n updates to the state ... It may
//! also request to be transferred only the state of certain objects"
//! (§3.2).

use crate::error::CodecError;
use crate::id::{ClientId, ObjectId, SeqNo};
use crate::wire::{decode_seq, encode_seq, Decode, Encode, Reader, WriteExt};
use bytes::{BufMut, BytesMut};
use std::fmt;

/// How much of the group's shared state a joining (or reconnecting)
/// client wants transferred.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum StateTransferPolicy {
    /// The full materialised state of every shared object.
    #[default]
    FullState,
    /// Only the latest `n` logged updates (incremental catch-up for
    /// slow links; the client is expected to tolerate missing older
    /// history).
    LastUpdates(u64),
    /// The full state of only the named objects.
    Objects(Vec<ObjectId>),
    /// Every logged update with a sequence number greater than `since`
    /// — used by reconnecting clients that already hold a prefix.
    UpdatesSince(SeqNo),
    /// No state at all (pure publisher clients that only push data).
    None,
}

impl StateTransferPolicy {
    /// Whether the policy transfers any data.
    pub fn transfers_state(&self) -> bool {
        !matches!(self, StateTransferPolicy::None)
    }
}

impl fmt::Display for StateTransferPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateTransferPolicy::FullState => f.write_str("full-state"),
            StateTransferPolicy::LastUpdates(n) => write!(f, "last-{n}-updates"),
            StateTransferPolicy::Objects(ids) => write!(f, "objects({})", ids.len()),
            StateTransferPolicy::UpdatesSince(seq) => write!(f, "updates-since-{seq}"),
            StateTransferPolicy::None => f.write_str("no-state"),
        }
    }
}

impl Encode for StateTransferPolicy {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            StateTransferPolicy::FullState => buf.put_u8(0),
            StateTransferPolicy::LastUpdates(n) => {
                buf.put_u8(1);
                buf.put_varint(*n);
            }
            StateTransferPolicy::Objects(ids) => {
                buf.put_u8(2);
                encode_seq(ids, buf);
            }
            StateTransferPolicy::UpdatesSince(seq) => {
                buf.put_u8(3);
                seq.encode(buf);
            }
            StateTransferPolicy::None => buf.put_u8(4),
        }
    }
}

impl Decode for StateTransferPolicy {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.read_u8()? {
            0 => Ok(StateTransferPolicy::FullState),
            1 => Ok(StateTransferPolicy::LastUpdates(reader.read_varint()?)),
            2 => Ok(StateTransferPolicy::Objects(decode_seq(reader)?)),
            3 => Ok(StateTransferPolicy::UpdatesSince(SeqNo::decode(reader)?)),
            4 => Ok(StateTransferPolicy::None),
            tag => Err(CodecError::InvalidTag {
                context: "StateTransferPolicy",
                tag,
            }),
        }
    }
}

/// Whether the sender of a multicast receives its own message back.
///
/// "A client multicasts a message sender-inclusively when the client
/// needs certain operations that the service performs on the message
/// (e.g., timestamping the message with real time)" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeliveryScope {
    /// Deliver to every member including the sender.
    #[default]
    SenderInclusive,
    /// Deliver to every member except the sender.
    SenderExclusive,
}

impl Encode for DeliveryScope {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            DeliveryScope::SenderInclusive => 0,
            DeliveryScope::SenderExclusive => 1,
        });
    }
}

impl Decode for DeliveryScope {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.read_u8()? {
            0 => Ok(DeliveryScope::SenderInclusive),
            1 => Ok(DeliveryScope::SenderExclusive),
            tag => Err(CodecError::InvalidTag {
                context: "DeliveryScope",
                tag,
            }),
        }
    }
}

/// Group lifetime semantics (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Persistence {
    /// The group and its shared state exist even with no members; only
    /// an explicit `deleteGroup` removes it.
    Persistent,
    /// The group ceases to exist when its membership becomes null and
    /// its shared state is lost.
    #[default]
    Transient,
}

impl Encode for Persistence {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            Persistence::Persistent => 0,
            Persistence::Transient => 1,
        });
    }
}

impl Decode for Persistence {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.read_u8()? {
            0 => Ok(Persistence::Persistent),
            1 => Ok(Persistence::Transient),
            tag => Err(CodecError::InvalidTag {
                context: "Persistence",
                tag,
            }),
        }
    }
}

/// The relationship of a member to a group. The paper (§3.1, fn. 1)
/// distinguishes principals from observers; observers receive the data
/// stream and awareness notifications but may not modify shared state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemberRole {
    /// Full member: may read and update the shared state.
    #[default]
    Principal,
    /// Read-only member: receives multicasts and membership awareness
    /// but may not broadcast updates or take locks.
    Observer,
}

impl MemberRole {
    /// Whether the role permits updating shared state.
    pub fn may_update(self) -> bool {
        matches!(self, MemberRole::Principal)
    }
}

impl Encode for MemberRole {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            MemberRole::Principal => 0,
            MemberRole::Observer => 1,
        });
    }
}

impl Decode for MemberRole {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.read_u8()? {
            0 => Ok(MemberRole::Principal),
            1 => Ok(MemberRole::Observer),
            tag => Err(CodecError::InvalidTag {
                context: "MemberRole",
                tag,
            }),
        }
    }
}

/// Public information about one group member, as carried in membership
/// queries and change notifications (the "awareness" service).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// The member's client id.
    pub client: ClientId,
    /// The member's role.
    pub role: MemberRole,
    /// Free-form display name supplied at join (e.g. a user name shown
    /// in the membership status window).
    pub display_name: String,
}

impl MemberInfo {
    /// Creates a member record.
    pub fn new(client: ClientId, role: MemberRole, display_name: impl Into<String>) -> Self {
        MemberInfo {
            client,
            role,
            display_name: display_name.into(),
        }
    }
}

impl Encode for MemberInfo {
    fn encode(&self, buf: &mut BytesMut) {
        self.client.encode(buf);
        self.role.encode(buf);
        buf.put_len_str(&self.display_name);
    }
}

impl Decode for MemberInfo {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MemberInfo {
            client: ClientId::decode(reader)?,
            role: MemberRole::decode(reader)?,
            display_name: reader.read_string()?,
        })
    }
}

/// A membership change event delivered to members that subscribed to
/// membership notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// A client joined the group.
    Joined(ClientId),
    /// A client left the group voluntarily.
    Left(ClientId),
    /// A client was disconnected (crash or link failure detected).
    Disconnected(ClientId),
}

impl MembershipChange {
    /// The client the change is about.
    pub fn client(self) -> ClientId {
        match self {
            MembershipChange::Joined(c)
            | MembershipChange::Left(c)
            | MembershipChange::Disconnected(c) => c,
        }
    }
}

impl Encode for MembershipChange {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MembershipChange::Joined(c) => {
                buf.put_u8(0);
                c.encode(buf);
            }
            MembershipChange::Left(c) => {
                buf.put_u8(1);
                c.encode(buf);
            }
            MembershipChange::Disconnected(c) => {
                buf.put_u8(2);
                c.encode(buf);
            }
        }
    }
}

impl Decode for MembershipChange {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = reader.read_u8()?;
        let client = ClientId::decode(reader)?;
        match tag {
            0 => Ok(MembershipChange::Joined(client)),
            1 => Ok(MembershipChange::Left(client)),
            2 => Ok(MembershipChange::Disconnected(client)),
            tag => Err(CodecError::InvalidTag {
                context: "MembershipChange",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_codec_roundtrips() {
        let policies = [
            StateTransferPolicy::FullState,
            StateTransferPolicy::LastUpdates(17),
            StateTransferPolicy::Objects(vec![ObjectId::new(1), ObjectId::new(9)]),
            StateTransferPolicy::UpdatesSince(SeqNo::new(42)),
            StateTransferPolicy::None,
        ];
        for p in policies {
            let bytes = p.encode_to_vec();
            assert_eq!(StateTransferPolicy::decode_exact(&bytes).unwrap(), p);
        }
    }

    #[test]
    fn policy_transfers_state() {
        assert!(StateTransferPolicy::FullState.transfers_state());
        assert!(StateTransferPolicy::LastUpdates(0).transfers_state());
        assert!(!StateTransferPolicy::None.transfers_state());
    }

    #[test]
    fn scope_persistence_role_roundtrip() {
        for s in [
            DeliveryScope::SenderInclusive,
            DeliveryScope::SenderExclusive,
        ] {
            assert_eq!(DeliveryScope::decode_exact(&s.encode_to_vec()).unwrap(), s);
        }
        for p in [Persistence::Persistent, Persistence::Transient] {
            assert_eq!(Persistence::decode_exact(&p.encode_to_vec()).unwrap(), p);
        }
        for r in [MemberRole::Principal, MemberRole::Observer] {
            assert_eq!(MemberRole::decode_exact(&r.encode_to_vec()).unwrap(), r);
        }
    }

    #[test]
    fn roles_gate_updates() {
        assert!(MemberRole::Principal.may_update());
        assert!(!MemberRole::Observer.may_update());
    }

    #[test]
    fn member_info_roundtrip() {
        let info = MemberInfo::new(ClientId::new(12), MemberRole::Observer, "ann");
        let bytes = info.encode_to_vec();
        assert_eq!(MemberInfo::decode_exact(&bytes).unwrap(), info);
    }

    #[test]
    fn membership_change_roundtrip_and_accessor() {
        for change in [
            MembershipChange::Joined(ClientId::new(3)),
            MembershipChange::Left(ClientId::new(4)),
            MembershipChange::Disconnected(ClientId::new(5)),
        ] {
            let bytes = change.encode_to_vec();
            assert_eq!(MembershipChange::decode_exact(&bytes).unwrap(), change);
        }
        assert_eq!(
            MembershipChange::Joined(ClientId::new(3)).client(),
            ClientId::new(3)
        );
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(StateTransferPolicy::decode_exact(&[9]).is_err());
        assert!(DeliveryScope::decode_exact(&[7]).is_err());
        assert!(Persistence::decode_exact(&[7]).is_err());
        assert!(MemberRole::decode_exact(&[7]).is_err());
        assert!(MembershipChange::decode_exact(&[7, 1]).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(StateTransferPolicy::FullState.to_string(), "full-state");
        assert_eq!(
            StateTransferPolicy::LastUpdates(5).to_string(),
            "last-5-updates"
        );
        assert_eq!(
            StateTransferPolicy::UpdatesSince(SeqNo::new(3)).to_string(),
            "updates-since-#3"
        );
    }
}
