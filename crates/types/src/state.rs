//! The shared-state model of a Corona group.
//!
//! Following the paper (§3.1), the shared state of a group is a set
//! `S = {(O_1, S_1), ..., (O_n, S_n)}` where each `S_i` is a *byte
//! stream encoding* of object `O_i`. The service is deliberately
//! type-opaque: it never interprets object payloads, it only stores,
//! logs and forwards them. Interpretation is the responsibility of the
//! collaborating clients (the paper's "client-based semantics").
//!
//! Two update operations exist (§3.2):
//!
//! * `bcastState` — the payload is a **new state** for the object and
//!   *overrides* the present state;
//! * `bcastUpdate` — the payload is an **incremental change** and is
//!   *appended* to the existing state, preserving the history of
//!   updates on the object.

use crate::error::CodecError;
use crate::id::{ClientId, ObjectId, SeqNo};
use crate::wire::{decode_seq, encode_seq, Decode, Encode, Reader, WriteExt};
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;
use std::fmt;

/// Microseconds since the UNIX epoch (or since simulation start, when
/// running under the simulator). The Corona server stamps
/// sender-inclusive multicasts with real time on behalf of clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// The value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Reads the host wall clock.
    pub fn now() -> Timestamp {
        use std::time::{SystemTime, UNIX_EPOCH};
        let micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Timestamp(micros)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Encode for Timestamp {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_varint(self.0);
    }
}

impl Decode for Timestamp {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Timestamp(reader.read_varint()?))
    }
}

/// How an update payload combines with the existing object state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// `bcastState`: the payload replaces the object's state.
    SetState,
    /// `bcastUpdate`: the payload is appended, preserving history.
    Incremental,
}

impl Encode for UpdateKind {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(match self {
            UpdateKind::SetState => 0,
            UpdateKind::Incremental => 1,
        });
    }
}

impl Decode for UpdateKind {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match reader.read_u8()? {
            0 => Ok(UpdateKind::SetState),
            1 => Ok(UpdateKind::Incremental),
            tag => Err(CodecError::InvalidTag {
                context: "UpdateKind",
                tag,
            }),
        }
    }
}

/// A single update to one shared object, as submitted by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateUpdate {
    /// The object being updated.
    pub object: ObjectId,
    /// Replace vs append semantics.
    pub kind: UpdateKind,
    /// The opaque byte-stream payload.
    pub payload: Bytes,
}

impl StateUpdate {
    /// Convenience constructor for a `bcastState` (override) update.
    pub fn set_state(object: ObjectId, payload: impl Into<Bytes>) -> Self {
        StateUpdate {
            object,
            kind: UpdateKind::SetState,
            payload: payload.into(),
        }
    }

    /// Convenience constructor for a `bcastUpdate` (incremental) update.
    pub fn incremental(object: ObjectId, payload: impl Into<Bytes>) -> Self {
        StateUpdate {
            object,
            kind: UpdateKind::Incremental,
            payload: payload.into(),
        }
    }

    /// Size of the payload in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

impl Encode for StateUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        self.object.encode(buf);
        self.kind.encode(buf);
        buf.put_len_bytes(&self.payload);
    }
}

impl Decode for StateUpdate {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(StateUpdate {
            object: ObjectId::decode(reader)?,
            kind: UpdateKind::decode(reader)?,
            payload: reader.read_bytes()?,
        })
    }
}

/// An update after the service sequenced it: the unit of the state log
/// and of multicast delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedUpdate {
    /// Position in the group's total order.
    pub seq: SeqNo,
    /// The member that submitted the update.
    pub sender: ClientId,
    /// Server-assigned real-time stamp.
    pub timestamp: Timestamp,
    /// The update itself.
    pub update: StateUpdate,
}

impl LoggedUpdate {
    /// Total encoded payload size (used by size-based log reduction).
    pub fn payload_len(&self) -> usize {
        self.update.payload.len()
    }
}

impl Encode for LoggedUpdate {
    fn encode(&self, buf: &mut BytesMut) {
        self.seq.encode(buf);
        self.sender.encode(buf);
        self.timestamp.encode(buf);
        self.update.encode(buf);
    }
}

impl Decode for LoggedUpdate {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(LoggedUpdate {
            seq: SeqNo::decode(reader)?,
            sender: ClientId::decode(reader)?,
            timestamp: Timestamp::decode(reader)?,
            update: StateUpdate::decode(reader)?,
        })
    }
}

/// The materialised state of one shared object.
///
/// `base` holds the last `SetState` payload (or the creation-time
/// payload); `increments` holds every `Incremental` payload appended
/// since. The full byte-stream encoding of the object — what a joining
/// client receives under the full-state transfer policy — is
/// `base ∥ increments[0] ∥ increments[1] ∥ ...`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObjectState {
    /// Last full state written with `SetState`.
    pub base: Bytes,
    /// Incremental payloads appended since `base` was written.
    pub increments: Vec<Bytes>,
}

impl ObjectState {
    /// Creates an object state with the given base and no increments.
    pub fn with_base(base: impl Into<Bytes>) -> Self {
        ObjectState {
            base: base.into(),
            increments: Vec::new(),
        }
    }

    /// Applies one update in place.
    pub fn apply(&mut self, kind: UpdateKind, payload: Bytes) {
        match kind {
            UpdateKind::SetState => {
                self.base = payload;
                self.increments.clear();
            }
            UpdateKind::Incremental => self.increments.push(payload),
        }
    }

    /// Materialises the full byte stream (base followed by all
    /// increments, in order).
    pub fn materialize(&self) -> Bytes {
        if self.increments.is_empty() {
            return self.base.clone();
        }
        let total: usize = self.base.len() + self.increments.iter().map(Bytes::len).sum::<usize>();
        let mut out = BytesMut::with_capacity(total);
        out.put_slice(&self.base);
        for inc in &self.increments {
            out.put_slice(inc);
        }
        out.freeze()
    }

    /// Collapses the increments into the base, preserving the
    /// materialised value. Used by log reduction: "the new state is
    /// equivalent with the initial state plus the history of state
    /// updates" (§3.2).
    pub fn compact(&mut self) {
        if !self.increments.is_empty() {
            self.base = self.materialize();
            self.increments.clear();
        }
    }

    /// Total stored bytes (base plus increments).
    pub fn stored_len(&self) -> usize {
        self.base.len() + self.increments.iter().map(Bytes::len).sum::<usize>()
    }
}

impl Encode for ObjectState {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_len_bytes(&self.base);
        encode_seq(&self.increments, buf);
    }
}

impl Decode for ObjectState {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ObjectState {
            base: reader.read_bytes()?,
            increments: decode_seq(reader)?,
        })
    }
}

/// The shared state of a group: a set of shared objects keyed by id.
///
/// A `BTreeMap` keeps iteration order deterministic, which matters for
/// reproducible snapshots and for the deterministic simulator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SharedState {
    objects: BTreeMap<ObjectId, ObjectState>,
}

impl SharedState {
    /// Creates an empty shared state.
    pub fn new() -> Self {
        SharedState::default()
    }

    /// Creates a shared state from `(id, initial bytes)` pairs.
    pub fn from_objects<I, B>(objects: I) -> Self
    where
        I: IntoIterator<Item = (ObjectId, B)>,
        B: Into<Bytes>,
    {
        SharedState {
            objects: objects
                .into_iter()
                .map(|(id, b)| (id, ObjectState::with_base(b)))
                .collect(),
        }
    }

    /// Number of shared objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the state holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Looks up one object's state.
    pub fn object(&self, id: ObjectId) -> Option<&ObjectState> {
        self.objects.get(&id)
    }

    /// Whether an object exists.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains_key(&id)
    }

    /// Iterates over `(id, state)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectState)> {
        self.objects.iter().map(|(id, st)| (*id, st))
    }

    /// Object ids in order.
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// Applies one update; creates the object if it does not exist yet
    /// (the service is type-opaque, so first use creates).
    pub fn apply(&mut self, update: &StateUpdate) {
        self.objects
            .entry(update.object)
            .or_default()
            .apply(update.kind, update.payload.clone());
    }

    /// Applies a sequence of logged updates in order.
    pub fn apply_all<'a>(&mut self, updates: impl IntoIterator<Item = &'a LoggedUpdate>) {
        for logged in updates {
            self.apply(&logged.update);
        }
    }

    /// Removes an object entirely. Returns its final state, if present.
    pub fn remove(&mut self, id: ObjectId) -> Option<ObjectState> {
        self.objects.remove(&id)
    }

    /// Compacts every object (see [`ObjectState::compact`]).
    pub fn compact(&mut self) {
        for obj in self.objects.values_mut() {
            obj.compact();
        }
    }

    /// Materialised `(id, full byte stream)` pairs — the payload of a
    /// full state transfer.
    pub fn materialize_all(&self) -> Vec<(ObjectId, Bytes)> {
        self.objects
            .iter()
            .map(|(id, st)| (*id, st.materialize()))
            .collect()
    }

    /// Total stored bytes across all objects (used by size-based log
    /// reduction and resource accounting).
    pub fn stored_len(&self) -> usize {
        self.objects.values().map(ObjectState::stored_len).sum()
    }
}

impl FromIterator<(ObjectId, ObjectState)> for SharedState {
    fn from_iter<I: IntoIterator<Item = (ObjectId, ObjectState)>>(iter: I) -> Self {
        SharedState {
            objects: iter.into_iter().collect(),
        }
    }
}

impl Extend<(ObjectId, ObjectState)> for SharedState {
    fn extend<I: IntoIterator<Item = (ObjectId, ObjectState)>>(&mut self, iter: I) {
        self.objects.extend(iter);
    }
}

impl Encode for SharedState {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_varint(self.objects.len() as u64);
        for (id, st) in &self.objects {
            id.encode(buf);
            st.encode(buf);
        }
    }
}

impl Decode for SharedState {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let count = reader.read_len()?;
        let mut objects = BTreeMap::new();
        for _ in 0..count {
            let id = ObjectId::decode(reader)?;
            let st = ObjectState::decode(reader)?;
            objects.insert(id, st);
        }
        Ok(SharedState { objects })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    #[test]
    fn set_state_overrides() {
        let mut st = ObjectState::with_base(&b"abc"[..]);
        st.apply(UpdateKind::Incremental, Bytes::from_static(b"def"));
        st.apply(UpdateKind::SetState, Bytes::from_static(b"xyz"));
        assert_eq!(st.materialize(), Bytes::from_static(b"xyz"));
        assert!(st.increments.is_empty(), "SetState clears history");
    }

    #[test]
    fn incremental_appends_preserving_history() {
        let mut st = ObjectState::with_base(&b"a"[..]);
        st.apply(UpdateKind::Incremental, Bytes::from_static(b"b"));
        st.apply(UpdateKind::Incremental, Bytes::from_static(b"c"));
        assert_eq!(st.materialize(), Bytes::from_static(b"abc"));
        assert_eq!(st.increments.len(), 2);
    }

    #[test]
    fn compact_preserves_materialized_value() {
        let mut st = ObjectState::with_base(&b"12"[..]);
        st.apply(UpdateKind::Incremental, Bytes::from_static(b"34"));
        let before = st.materialize();
        st.compact();
        assert_eq!(st.materialize(), before);
        assert!(st.increments.is_empty());
        assert_eq!(st.base, before);
    }

    #[test]
    fn shared_state_creates_objects_on_first_update() {
        let mut state = SharedState::new();
        assert!(!state.contains(oid(1)));
        state.apply(&StateUpdate::incremental(oid(1), &b"x"[..]));
        assert!(state.contains(oid(1)));
        assert_eq!(
            state.object(oid(1)).unwrap().materialize(),
            Bytes::from_static(b"x")
        );
    }

    #[test]
    fn apply_all_in_order() {
        let mut state = SharedState::new();
        let updates = vec![
            LoggedUpdate {
                seq: SeqNo::new(1),
                sender: ClientId::new(1),
                timestamp: Timestamp::ZERO,
                update: StateUpdate::set_state(oid(1), &b"A"[..]),
            },
            LoggedUpdate {
                seq: SeqNo::new(2),
                sender: ClientId::new(2),
                timestamp: Timestamp::ZERO,
                update: StateUpdate::incremental(oid(1), &b"B"[..]),
            },
        ];
        state.apply_all(&updates);
        assert_eq!(
            state.object(oid(1)).unwrap().materialize(),
            Bytes::from_static(b"AB")
        );
    }

    #[test]
    fn stored_len_accounts_base_and_increments() {
        let mut state = SharedState::from_objects([(oid(1), &b"1234"[..])]);
        state.apply(&StateUpdate::incremental(oid(1), &b"56"[..]));
        state.apply(&StateUpdate::set_state(oid(2), &b"789"[..]));
        assert_eq!(state.stored_len(), 4 + 2 + 3);
    }

    #[test]
    fn materialize_all_is_ordered_by_id() {
        let state = SharedState::from_objects([(oid(3), &b"c"[..]), (oid(1), &b"a"[..])]);
        let mats = state.materialize_all();
        assert_eq!(mats[0].0, oid(1));
        assert_eq!(mats[1].0, oid(3));
    }

    #[test]
    fn codec_roundtrip_object_state() {
        let mut st = ObjectState::with_base(&b"base"[..]);
        st.apply(UpdateKind::Incremental, Bytes::from_static(b"inc1"));
        st.apply(UpdateKind::Incremental, Bytes::from_static(b"inc2"));
        let bytes = st.encode_to_vec();
        assert_eq!(ObjectState::decode_exact(&bytes).unwrap(), st);
    }

    #[test]
    fn codec_roundtrip_shared_state() {
        let mut state = SharedState::from_objects([(oid(1), &b"one"[..]), (oid(2), &b"two"[..])]);
        state.apply(&StateUpdate::incremental(oid(2), &b"+"[..]));
        let bytes = state.encode_to_vec();
        assert_eq!(SharedState::decode_exact(&bytes).unwrap(), state);
    }

    #[test]
    fn codec_roundtrip_logged_update() {
        let logged = LoggedUpdate {
            seq: SeqNo::new(99),
            sender: ClientId::new(5),
            timestamp: Timestamp::from_micros(123_456),
            update: StateUpdate::incremental(oid(7), &b"payload"[..]),
        };
        let bytes = logged.encode_to_vec();
        assert_eq!(LoggedUpdate::decode_exact(&bytes).unwrap(), logged);
    }

    #[test]
    fn update_kind_rejects_bad_tag() {
        assert!(UpdateKind::decode_exact(&[9]).is_err());
    }

    #[test]
    fn remove_returns_final_state() {
        let mut state = SharedState::from_objects([(oid(1), &b"z"[..])]);
        let removed = state.remove(oid(1)).unwrap();
        assert_eq!(removed.materialize(), Bytes::from_static(b"z"));
        assert!(state.is_empty());
        assert!(state.remove(oid(1)).is_none());
    }

    #[test]
    fn timestamp_now_is_monotonic_enough() {
        let a = Timestamp::now();
        let b = Timestamp::now();
        assert!(b >= a);
        assert!(a.as_micros() > 1_600_000_000_000_000, "after 2020");
    }
}
