//! Low-level binary codec primitives.
//!
//! All Corona wire traffic and all stable-storage records are encoded
//! with the little-endian, length-prefixed primitives defined here. The
//! format is deliberately simple and self-delimiting so the same codec
//! serves the TCP transport, the in-memory transport, and the on-disk
//! log (whose records must be replayable after a torn tail write).
//!
//! Variable-length integers use LEB128 (7 bits per byte), which keeps
//! the many small sequence numbers and collection lengths compact while
//! allowing the full `u64` range.

use crate::error::CodecError;
use bytes::{BufMut, Bytes, BytesMut};

/// Upper bound on any single declared length (bytes, string, or
/// collection element count). Protects decoders against hostile or
/// corrupt length fields causing huge allocations.
pub const MAX_DECLARED_LEN: u64 = 64 * 1024 * 1024;

/// Serialises a value into the Corona wire format.
pub trait Encode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Encodes `self` into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.to_vec()
    }

    /// Encodes `self` into owned [`Bytes`].
    fn encode_to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }
}

/// Deserialises a value from the Corona wire format.
pub trait Decode: Sized {
    /// Reads one value from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] if the input is truncated, carries an
    /// unknown tag, or violates a length limit.
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decodes a value from a complete buffer, requiring that every
    /// byte is consumed.
    ///
    /// # Errors
    ///
    /// In addition to decode errors, returns
    /// [`CodecError::TrailingBytes`] if the buffer contains more than
    /// one value.
    fn decode_exact(input: &[u8]) -> Result<Self, CodecError> {
        let mut reader = Reader::new(input);
        let value = Self::decode(&mut reader)?;
        if reader.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                remaining: reader.remaining(),
            });
        }
        Ok(value)
    }
}

/// A cursor over a byte slice with checked primitive reads.
#[derive(Debug)]
pub struct Reader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        Reader { input, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.input[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    pub fn read_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a LEB128 variable-length integer.
    pub fn read_varint(&mut self) -> Result<u64, CodecError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::LengthOverflow {
                    declared: u64::MAX,
                    limit: u64::MAX,
                });
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::LengthOverflow {
                    declared: u64::MAX,
                    limit: u64::MAX,
                });
            }
        }
    }

    /// Reads a declared length and validates it against
    /// [`MAX_DECLARED_LEN`] and the remaining input.
    pub fn read_len(&mut self) -> Result<usize, CodecError> {
        let declared = self.read_varint()?;
        if declared > MAX_DECLARED_LEN {
            return Err(CodecError::LengthOverflow {
                declared,
                limit: MAX_DECLARED_LEN,
            });
        }
        Ok(declared as usize)
    }

    /// Reads a length-prefixed byte string as owned [`Bytes`].
    pub fn read_bytes(&mut self) -> Result<Bytes, CodecError> {
        let len = self.read_len()?;
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_string(&mut self) -> Result<String, CodecError> {
        let len = self.read_len()?;
        let slice = self.take(len)?;
        String::from_utf8(slice.to_vec()).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Reads a boolean encoded as a single 0/1 byte.
    pub fn read_bool(&mut self) -> Result<bool, CodecError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag {
                context: "bool",
                tag,
            }),
        }
    }
}

/// Write-side primitives as free functions over `BytesMut`.
///
/// Kept as an extension trait so call sites read naturally
/// (`buf.put_varint(n)`), mirroring the `bytes::BufMut` style.
pub trait WriteExt: BufMut {
    /// Writes a LEB128 variable-length integer.
    fn put_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7F) as u8;
            value >>= 7;
            if value == 0 {
                self.put_u8(byte);
                return;
            }
            self.put_u8(byte | 0x80);
        }
    }

    /// Writes a length-prefixed byte string.
    fn put_len_bytes(&mut self, data: &[u8]) {
        self.put_varint(data.len() as u64);
        self.put_slice(data);
    }

    /// Writes a length-prefixed UTF-8 string.
    fn put_len_str(&mut self, s: &str) {
        self.put_len_bytes(s.as_bytes());
    }

    /// Writes a boolean as a single 0/1 byte.
    fn put_bool(&mut self, value: bool) {
        self.put_u8(u8::from(value));
    }
}

impl<T: BufMut + ?Sized> WriteExt for T {}

/// Encodes a sequence of encodable values with a leading count.
pub fn encode_seq<T: Encode>(items: &[T], buf: &mut BytesMut) {
    buf.put_varint(items.len() as u64);
    for item in items {
        item.encode(buf);
    }
}

/// Decodes a counted sequence of decodable values.
///
/// # Errors
///
/// Propagates element decode errors; rejects counts above
/// [`MAX_DECLARED_LEN`].
pub fn decode_seq<T: Decode>(reader: &mut Reader<'_>) -> Result<Vec<T>, CodecError> {
    let count = reader.read_len()?;
    // Guard against a hostile count with a tiny body: cap the upfront
    // allocation and let the EOF check catch the lie.
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        out.push(T::decode(reader)?);
    }
    Ok(out)
}

/// Encodes an `Option<T>` with a presence byte.
pub fn encode_opt<T: Encode>(value: &Option<T>, buf: &mut BytesMut) {
    match value {
        None => buf.put_bool(false),
        Some(v) => {
            buf.put_bool(true);
            v.encode(buf);
        }
    }
}

/// Decodes an `Option<T>` with a presence byte.
///
/// # Errors
///
/// Propagates presence-byte and element decode errors.
pub fn decode_opt<T: Decode>(reader: &mut Reader<'_>) -> Result<Option<T>, CodecError> {
    if reader.read_bool()? {
        Ok(Some(T::decode(reader)?))
    } else {
        Ok(None)
    }
}

/// Marker byte introducing an optional trailing trace field after a
/// top-level message encoding (see [`encode_traced`]).
pub const TRACE_MARKER: u8 = 0xC7;

/// The per-message trace context carried on the wire: a process-unique
/// trace id plus the sender's origin timestamp in microseconds.
///
/// The token rides *after* the message body as an optional trailing
/// field, which keeps the extension backward compatible: encodings
/// produced without a token are byte-identical to the pre-tracing
/// format, and [`decode_traced`] accepts both forms (an absent tail
/// simply yields `None`). Only frames from tracing-enabled senders
/// carry the extra bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceToken {
    /// The trace id ([`corona-trace`'s `TraceId`] as a raw `u64`).
    pub id: u64,
    /// Sender-side origin timestamp in microseconds.
    pub origin_us: u64,
}

/// Encodes a top-level message, optionally appending a trailing
/// [`TraceToken`] (`TRACE_MARKER ∥ varint id ∥ varint origin_us`).
pub fn encode_traced<T: Encode>(value: &T, token: Option<TraceToken>) -> Bytes {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    if let Some(t) = token {
        buf.put_u8(TRACE_MARKER);
        buf.put_varint(t.id);
        buf.put_varint(t.origin_us);
    }
    buf.freeze()
}

/// Decodes a complete top-level message buffer that may carry a
/// trailing [`TraceToken`]. Untraced buffers (the pre-tracing format)
/// decode to `(value, None)`.
///
/// # Errors
///
/// Message decode errors; [`CodecError::TrailingBytes`] if the tail is
/// present but malformed or followed by further bytes.
pub fn decode_traced<T: Decode>(input: &[u8]) -> Result<(T, Option<TraceToken>), CodecError> {
    let mut reader = Reader::new(input);
    let value = T::decode(&mut reader)?;
    if reader.remaining() == 0 {
        return Ok((value, None));
    }
    let remaining = reader.remaining();
    if reader.read_u8()? != TRACE_MARKER {
        return Err(CodecError::TrailingBytes { remaining });
    }
    let id = reader.read_varint()?;
    let origin_us = reader.read_varint()?;
    if reader.remaining() != 0 {
        return Err(CodecError::TrailingBytes {
            remaining: reader.remaining(),
        });
    }
    Ok((value, Some(TraceToken { id, origin_us })))
}

macro_rules! impl_id_codec {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Encode for $ty {
                fn encode(&self, buf: &mut BytesMut) {
                    buf.put_varint(self.0);
                }
            }

            impl Decode for $ty {
                fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
                    Ok(Self(reader.read_varint()?))
                }
            }
        )+
    };
}

impl_id_codec!(
    crate::id::GroupId,
    crate::id::ObjectId,
    crate::id::ClientId,
    crate::id::ServerId,
    crate::id::SeqNo,
    crate::id::Epoch,
);

impl Encode for u64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_varint(*self);
    }
}

impl Decode for u64 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        reader.read_varint()
    }
}

impl Encode for Bytes {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_len_bytes(self);
    }
}

impl Decode for Bytes {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        reader.read_bytes()
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_len_str(self);
    }
}

impl Decode for String {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        reader.read_string()
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(reader)?, B::decode(reader)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::{GroupId, SeqNo};

    fn roundtrip_varint(v: u64) {
        let mut buf = BytesMut::new();
        buf.put_varint(v);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_varint().unwrap(), v);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_roundtrips() {
        for v in [
            0,
            1,
            127,
            128,
            255,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            roundtrip_varint(v);
        }
    }

    #[test]
    fn varint_compactness() {
        let mut buf = BytesMut::new();
        buf.put_varint(5);
        assert_eq!(buf.len(), 1);
        buf.clear();
        buf.put_varint(128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        buf.put_varint(u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn varint_rejects_overlong() {
        // 11 continuation bytes cannot encode any u64.
        let input = [0xFFu8; 11];
        let mut r = Reader::new(&input);
        assert!(matches!(
            r.read_varint(),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn fixed_width_reads() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert_eq!(r.read_u16().unwrap(), 0xBEEF);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn eof_is_reported_with_counts() {
        let mut r = Reader::new(&[1, 2]);
        let err = r.read_u32().unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEof {
                needed: 4,
                remaining: 2
            }
        );
    }

    #[test]
    fn strings_and_bytes_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_len_str("héllo wörld");
        buf.put_len_bytes(&[0, 1, 2, 255]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_string().unwrap(), "héllo wörld");
        assert_eq!(r.read_bytes().unwrap().as_ref(), &[0, 1, 2, 255]);
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = BytesMut::new();
        buf.put_len_bytes(&[0xFF, 0xFE]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_string().unwrap_err(), CodecError::InvalidUtf8);
    }

    #[test]
    fn bool_rejects_nonbinary() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(
            r.read_bool(),
            Err(CodecError::InvalidTag {
                context: "bool",
                ..
            })
        ));
    }

    #[test]
    fn length_limit_enforced() {
        let mut buf = BytesMut::new();
        buf.put_varint(MAX_DECLARED_LEN + 1);
        let mut r = Reader::new(&buf);
        assert!(matches!(
            r.read_len(),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn id_codec_roundtrip() {
        let mut buf = BytesMut::new();
        GroupId::new(300).encode(&mut buf);
        SeqNo::new(7).encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(GroupId::decode(&mut r).unwrap(), GroupId::new(300));
        assert_eq!(SeqNo::decode(&mut r).unwrap(), SeqNo::new(7));
    }

    #[test]
    fn seq_and_opt_helpers() {
        let mut buf = BytesMut::new();
        encode_seq(&[1u64, 2, 3], &mut buf);
        encode_opt(&Some(9u64), &mut buf);
        encode_opt::<u64>(&None, &mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(decode_seq::<u64>(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(decode_opt::<u64>(&mut r).unwrap(), Some(9));
        assert_eq!(decode_opt::<u64>(&mut r).unwrap(), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn decode_exact_rejects_trailing() {
        let mut buf = BytesMut::new();
        buf.put_varint(1);
        buf.put_u8(0xAA);
        let err = u64::decode_exact(&buf).unwrap_err();
        assert_eq!(err, CodecError::TrailingBytes { remaining: 1 });
    }

    #[test]
    fn traced_roundtrip_and_backward_compat() {
        let token = TraceToken {
            id: 42,
            origin_us: 1_234_567,
        };
        let traced = encode_traced(&7u64, Some(token));
        assert_eq!(decode_traced::<u64>(&traced).unwrap(), (7, Some(token)));

        // Without a token the encoding is byte-identical to the plain
        // form, and plain buffers decode with `None`.
        let plain = encode_traced(&7u64, None);
        let mut bare = BytesMut::new();
        7u64.encode(&mut bare);
        assert_eq!(&plain[..], &bare[..]);
        assert_eq!(decode_traced::<u64>(&plain).unwrap(), (7, None));
    }

    #[test]
    fn traced_decode_rejects_malformed_tails() {
        // Trailing garbage that is not a trace marker.
        let mut buf = BytesMut::new();
        buf.put_varint(7);
        buf.put_u8(0xAA);
        assert_eq!(
            decode_traced::<u64>(&buf).unwrap_err(),
            CodecError::TrailingBytes { remaining: 1 }
        );

        // A marker with a truncated payload.
        let mut buf = BytesMut::new();
        buf.put_varint(7);
        buf.put_u8(TRACE_MARKER);
        buf.put_varint(42);
        assert!(decode_traced::<u64>(&buf).is_err());

        // Bytes after a complete token.
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&encode_traced(
            &7u64,
            Some(TraceToken {
                id: 1,
                origin_us: 2,
            }),
        ));
        buf.put_u8(0x00);
        assert_eq!(
            decode_traced::<u64>(&buf).unwrap_err(),
            CodecError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn hostile_count_does_not_overallocate() {
        // Declares 2^20 elements but provides none: must fail with EOF,
        // not abort on allocation.
        let mut buf = BytesMut::new();
        buf.put_varint(1 << 20);
        let mut r = Reader::new(&buf);
        assert!(decode_seq::<u64>(&mut r).is_err());
    }
}
