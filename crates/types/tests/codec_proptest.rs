//! Property-based tests for the Corona wire codec: arbitrary protocol
//! values must round-trip exactly, and arbitrary byte soup must never
//! panic the decoder.

use bytes::Bytes;
use corona_types::id::{ClientId, Epoch, GroupId, ObjectId, SeqNo, ServerId};
use corona_types::message::{ClientRequest, PeerMessage, ServerEvent, StateTransfer};
use corona_types::policy::{
    DeliveryScope, MemberInfo, MemberRole, MembershipChange, Persistence, StateTransferPolicy,
};
use corona_types::state::{LoggedUpdate, SharedState, StateUpdate, Timestamp, UpdateKind};
use corona_types::wire::{Decode, Encode};
use proptest::prelude::*;

fn arb_bytes(max: usize) -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..max).prop_map(Bytes::from)
}

fn arb_update_kind() -> impl Strategy<Value = UpdateKind> {
    prop_oneof![Just(UpdateKind::SetState), Just(UpdateKind::Incremental)]
}

fn arb_state_update() -> impl Strategy<Value = StateUpdate> {
    (any::<u64>(), arb_update_kind(), arb_bytes(256)).prop_map(|(o, kind, payload)| StateUpdate {
        object: ObjectId::new(o),
        kind,
        payload,
    })
}

fn arb_logged() -> impl Strategy<Value = LoggedUpdate> {
    (any::<u64>(), any::<u64>(), any::<u64>(), arb_state_update()).prop_map(
        |(seq, sender, ts, update)| LoggedUpdate {
            seq: SeqNo::new(seq),
            sender: ClientId::new(sender),
            timestamp: Timestamp::from_micros(ts),
            update,
        },
    )
}

fn arb_shared_state() -> impl Strategy<Value = SharedState> {
    proptest::collection::vec((any::<u64>(), arb_bytes(64)), 0..8).prop_map(|objs| {
        SharedState::from_objects(objs.into_iter().map(|(id, b)| (ObjectId::new(id), b)))
    })
}

fn arb_policy() -> impl Strategy<Value = StateTransferPolicy> {
    prop_oneof![
        Just(StateTransferPolicy::FullState),
        any::<u64>().prop_map(StateTransferPolicy::LastUpdates),
        proptest::collection::vec(any::<u64>(), 0..6)
            .prop_map(|v| StateTransferPolicy::Objects(v.into_iter().map(ObjectId::new).collect())),
        any::<u64>().prop_map(|s| StateTransferPolicy::UpdatesSince(SeqNo::new(s))),
        Just(StateTransferPolicy::None),
    ]
}

fn arb_member_info() -> impl Strategy<Value = MemberInfo> {
    (any::<u64>(), any::<bool>(), "[a-z]{0,12}").prop_map(|(c, obs, name)| {
        MemberInfo::new(
            ClientId::new(c),
            if obs {
                MemberRole::Observer
            } else {
                MemberRole::Principal
            },
            name,
        )
    })
}

fn arb_change() -> impl Strategy<Value = MembershipChange> {
    (any::<u64>(), 0u8..3).prop_map(|(c, k)| {
        let c = ClientId::new(c);
        match k {
            0 => MembershipChange::Joined(c),
            1 => MembershipChange::Left(c),
            _ => MembershipChange::Disconnected(c),
        }
    })
}

fn arb_scope() -> impl Strategy<Value = DeliveryScope> {
    prop_oneof![
        Just(DeliveryScope::SenderInclusive),
        Just(DeliveryScope::SenderExclusive)
    ]
}

fn arb_transfer() -> impl Strategy<Value = StateTransfer> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec((any::<u64>(), arb_bytes(64)), 0..5),
        proptest::collection::vec(arb_logged(), 0..5),
    )
        .prop_map(|(g, basis, through, objects, updates)| StateTransfer {
            group: GroupId::new(g),
            basis: SeqNo::new(basis),
            through: SeqNo::new(through),
            objects: objects
                .into_iter()
                .map(|(id, b)| (ObjectId::new(id), b))
                .collect(),
            updates,
        })
}

fn arb_client_request() -> impl Strategy<Value = ClientRequest> {
    prop_oneof![
        ("[a-z]{0,10}", proptest::option::of(any::<u64>())).prop_map(|(name, resume)| {
            ClientRequest::Hello {
                version: 1,
                display_name: name,
                resume: resume.map(ClientId::new),
            }
        }),
        (any::<u64>(), any::<bool>(), arb_shared_state()).prop_map(|(g, p, st)| {
            ClientRequest::CreateGroup {
                group: GroupId::new(g),
                persistence: if p {
                    Persistence::Persistent
                } else {
                    Persistence::Transient
                },
                initial_state: st,
            }
        }),
        any::<u64>().prop_map(|g| ClientRequest::DeleteGroup {
            group: GroupId::new(g)
        }),
        (any::<u64>(), any::<bool>(), arb_policy(), any::<bool>()).prop_map(
            |(g, obs, policy, notify)| ClientRequest::Join {
                group: GroupId::new(g),
                role: if obs {
                    MemberRole::Observer
                } else {
                    MemberRole::Principal
                },
                policy,
                notify_membership: notify,
            }
        ),
        any::<u64>().prop_map(|g| ClientRequest::Leave {
            group: GroupId::new(g)
        }),
        (any::<u64>(), arb_state_update(), arb_scope()).prop_map(|(g, update, scope)| {
            ClientRequest::Broadcast {
                group: GroupId::new(g),
                update,
                scope,
            }
        }),
        (any::<u64>(), arb_policy()).prop_map(|(g, policy)| ClientRequest::GetState {
            group: GroupId::new(g),
            policy,
        }),
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(g, o, wait)| {
            ClientRequest::AcquireLock {
                group: GroupId::new(g),
                object: ObjectId::new(o),
                wait,
            }
        }),
        (any::<u64>(), proptest::option::of(any::<u64>())).prop_map(|(g, s)| {
            ClientRequest::ReduceLog {
                group: GroupId::new(g),
                through: s.map(SeqNo::new),
            }
        }),
        any::<u64>().prop_map(|nonce| ClientRequest::Ping { nonce }),
        Just(ClientRequest::Goodbye),
        Just(ClientRequest::GetHealth),
    ]
}

fn arb_server_event() -> impl Strategy<Value = ServerEvent> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(s, c)| ServerEvent::Welcome {
            server: ServerId::new(s),
            client: ClientId::new(c),
            version: 1,
        }),
        (
            proptest::collection::vec(arb_member_info(), 0..4),
            arb_transfer()
        )
            .prop_map(|(members, transfer)| ServerEvent::Joined { members, transfer }),
        (any::<u64>(), arb_logged()).prop_map(|(g, logged)| ServerEvent::Multicast {
            group: GroupId::new(g),
            logged,
        }),
        (any::<u64>(), arb_change(), arb_member_info()).prop_map(|(g, change, info)| {
            ServerEvent::MembershipChanged {
                group: GroupId::new(g),
                change,
                info,
            }
        }),
        (any::<u16>(), "[ -~]{0,30}")
            .prop_map(|(code, detail)| ServerEvent::Error { code, detail }),
        (any::<u64>(), any::<u64>()).prop_map(|(nonce, at)| ServerEvent::Pong {
            nonce,
            at: Timestamp::from_micros(at),
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), "[a-z0-9:.]{0,16}"), 0..5)
        )
            .prop_map(|(e, c, servers)| ServerEvent::Roster {
                epoch: Epoch(e),
                coordinator: ServerId::new(c),
                servers: servers
                    .into_iter()
                    .map(|(id, addr)| (ServerId::new(id), addr))
                    .collect(),
            }),
        (any::<u16>(), "[ -~]{0,60}")
            .prop_map(|(schema, json)| ServerEvent::Health { schema, json }),
    ]
}

fn arb_peer_message() -> impl Strategy<Value = PeerMessage> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(f, e)| PeerMessage::Heartbeat {
            from: ServerId::new(f),
            epoch: Epoch(e),
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_state_update(),
            arb_scope(),
            any::<u64>()
        )
            .prop_map(
                |(o, s, g, update, scope, tag)| PeerMessage::ForwardBroadcast {
                    origin: ServerId::new(o),
                    sender: ClientId::new(s),
                    group: GroupId::new(g),
                    update,
                    scope,
                    local_tag: tag,
                }
            ),
        (
            any::<u64>(),
            any::<u64>(),
            arb_logged(),
            arb_scope(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(g, e, logged, scope, o, tag)| PeerMessage::Sequenced {
                group: GroupId::new(g),
                epoch: Epoch(e),
                logged,
                scope,
                origin: ServerId::new(o),
                local_tag: tag,
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_shared_state(),
            proptest::collection::vec(arb_logged(), 0..4)
        )
            .prop_map(|(f, g, t, state, updates)| PeerMessage::GroupStateReply {
                from: ServerId::new(f),
                group: GroupId::new(g),
                persistence: Persistence::Persistent,
                through: SeqNo::new(t),
                state,
                updates,
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_client_request()
        )
            .prop_map(|(o, c, tag, request)| PeerMessage::ForwardRequest {
                origin: ServerId::new(o),
                client: ClientId::new(c),
                local_tag: tag,
                request,
            }),
        (any::<u64>(), arb_server_event()).prop_map(|(c, event)| PeerMessage::Deliver {
            client: ClientId::new(c),
            event,
        }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u64>(), 0..8)
        )
            .prop_map(|(e, c, servers)| PeerMessage::ServerList {
                epoch: Epoch(e),
                coordinator: ServerId::new(c),
                servers: servers.into_iter().map(ServerId::new).collect(),
            }),
    ]
}

proptest! {
    #[test]
    fn client_requests_roundtrip(req in arb_client_request()) {
        let bytes = req.encode_to_vec();
        prop_assert_eq!(ClientRequest::decode_exact(&bytes).unwrap(), req);
    }

    #[test]
    fn server_events_roundtrip(ev in arb_server_event()) {
        let bytes = ev.encode_to_vec();
        prop_assert_eq!(ServerEvent::decode_exact(&bytes).unwrap(), ev);
    }

    #[test]
    fn peer_messages_roundtrip(msg in arb_peer_message()) {
        let bytes = msg.encode_to_vec();
        prop_assert_eq!(PeerMessage::decode_exact(&bytes).unwrap(), msg);
    }

    #[test]
    fn shared_state_roundtrips(state in arb_shared_state()) {
        let bytes = state.encode_to_vec();
        prop_assert_eq!(SharedState::decode_exact(&bytes).unwrap(), state);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any of Ok / Err is fine; panicking or aborting is not.
        let _ = ClientRequest::decode_exact(&data);
        let _ = ServerEvent::decode_exact(&data);
        let _ = PeerMessage::decode_exact(&data);
        let _ = SharedState::decode_exact(&data);
        let _ = StateTransfer::decode_exact(&data);
    }

    #[test]
    fn truncation_never_decodes_to_wrong_value(req in arb_client_request(), cut_frac in 0.0f64..1.0) {
        let bytes = req.encode_to_vec();
        if bytes.len() > 1 {
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            // A strict prefix must either fail, or (never) succeed equal.
            if let Ok(decoded) = ClientRequest::decode_exact(&bytes[..cut]) {
                prop_assert_ne!(decoded, req);
            }
        }
    }

    #[test]
    fn transfer_reconstruct_matches_sequential_apply(transfer in arb_transfer()) {
        let via_reconstruct = transfer.reconstruct();
        let mut manual = SharedState::from_objects(
            transfer.objects.iter().map(|(id, b)| (*id, b.clone())),
        );
        for u in &transfer.updates {
            manual.apply(&u.update);
        }
        prop_assert_eq!(via_reconstruct, manual);
    }
}
