//! The paper's chat box (§5.1): "an edit area for composing messages
//! and a scrollable area for displaying a list of received messages"
//! — here as a headless re-creation where several simulated users
//! exchange messages, a latecomer catches up with the
//! `LastUpdates(n)` state-transfer policy (only the recent scrollback,
//! suiting a modem link), and everyone's transcript converges.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example chat
//! ```

use corona::prelude::*;
use std::time::Duration;

const CHAT_ROOM: GroupId = GroupId(42);
const TRANSCRIPT: ObjectId = ObjectId(1);

/// One simulated chat participant.
struct User {
    client: CoronaClient,
    mirror: GroupMirror,
    name: &'static str,
}

impl User {
    fn join(addr: &str, name: &'static str) -> corona::types::Result<User> {
        let client = CoronaClient::connect(TcpDialer.dial(addr).expect("dial"), name, None)?;
        let (_, mirror) = client.join_mirrored(CHAT_ROOM, MemberRole::Principal, true)?;
        Ok(User {
            client,
            mirror,
            name,
        })
    }

    fn say(&self, line: &str) -> corona::types::Result<()> {
        let stamped = format!("<{}> {line}\n", self.name);
        // Sender-inclusive: the server's sequenced echo is what lands
        // in everyone's transcript, including ours — so all replicas
        // order every line identically.
        self.client.bcast_update(
            CHAT_ROOM,
            TRANSCRIPT,
            stamped.into_bytes(),
            DeliveryScope::SenderInclusive,
        )
    }

    /// Drains pending events into the local transcript mirror.
    fn sync(&mut self) {
        while let Ok(event) = self.client.next_event_timeout(Duration::from_millis(300)) {
            self.mirror.apply_event(&event);
        }
    }

    fn transcript(&self) -> String {
        self.mirror
            .state()
            .object(TRANSCRIPT)
            .map(|o| String::from_utf8_lossy(&o.materialize()).into_owned())
            .unwrap_or_default()
    }
}

fn main() -> corona::types::Result<()> {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr();
    let server = CoronaServer::start(
        Box::new(acceptor),
        ServerConfig::stateful(ServerId::new(1))
            // Keep at most 50 chat lines replayable; older history is
            // folded into the checkpoint (§3.2 log reduction).
            .with_reduction(ReductionPolicy::MaxUpdates { max: 50, keep: 20 }),
    )?;

    // The room is created by a founding user.
    let founder = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "founder", None)?;
    founder.create_group(CHAT_ROOM, Persistence::Persistent, SharedState::new())?;
    founder.close();

    let mut ann = User::join(&addr, "ann")?;
    let mut bob = User::join(&addr, "bob")?;

    ann.say("hi all — campaign data is up")?;
    bob.say("looking at the instrument feed now")?;
    ann.say("radar plot at 14:02 looks odd")?;
    bob.say("agreed, re-running the filter")?;
    ann.sync();
    bob.sync();

    // A latecomer with a slow link asks for only the last 3 lines.
    let late_client = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "cara", None)?;
    let (members, transfer) = late_client.join(
        CHAT_ROOM,
        MemberRole::Principal,
        StateTransferPolicy::LastUpdates(3),
        true,
    )?;
    println!(
        "cara joined ({} members online), incremental transfer: {} recent lines, {} bytes",
        members.len(),
        transfer.updates.len(),
        transfer.payload_len()
    );
    let mut cara = User {
        mirror: GroupMirror::from_transfer(&transfer),
        client: late_client,
        name: "cara",
    };

    cara.say("sorry I'm late — what did I miss?")?;
    ann.sync();
    bob.sync();
    cara.sync();

    println!("--- ann's full transcript ---\n{}", ann.transcript());
    println!(
        "--- cara's view (joined with last-3 policy) ---\n{}",
        cara.transcript()
    );

    // Everyone who was present from the start converges exactly.
    assert_eq!(ann.transcript(), bob.transcript());
    // Cara's view is a suffix of the full transcript (she skipped the
    // oldest history on purpose).
    assert!(ann.transcript().ends_with(&cara.transcript()));

    // What the session looked like from the server's side: the shared
    // metric registry every layer records into (see DESIGN.md
    // "Observability").
    let stats = server.stats()?;
    println!(
        "--- server stats ---\nbroadcasts={} deliveries={} joins={} conns={} reductions={}",
        stats.broadcasts, stats.deliveries, stats.joins, stats.conns_accepted, stats.reductions
    );
    println!(
        "--- server metrics ---\n{}",
        server.metrics()?.render_text()
    );

    ann.client.close();
    bob.client.close();
    cara.client.close();
    server.shutdown();
    Ok(())
}
