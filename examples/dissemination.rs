//! Reliable data dissemination (Figure 1 of the paper): publishers
//! *push* instrument data into a persistent pool; permanent
//! subscribers receive it synchronously; **asynchronous subscribers**
//! connect occasionally and *pull* the data that accumulated while
//! they were away — the service keeps it "long time after it has
//! received it from its publisher" (§1).
//!
//! Run with:
//!
//! ```sh
//! cargo run --example dissemination
//! ```

use corona::prelude::*;
use std::time::Duration;

const FEED: GroupId = GroupId(11);
const RADAR: ObjectId = ObjectId(1);
const LIDAR: ObjectId = ObjectId(2);

fn reading(instrument: &str, t: u32) -> Vec<u8> {
    format!("{instrument} t={t} value={}\n", 100 + t * 3).into_bytes()
}

fn main() -> corona::types::Result<()> {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr();
    let server = CoronaServer::start(Box::new(acceptor), ServerConfig::stateful(ServerId::new(1)))?;

    // The publisher creates the persistent feed and pushes readings.
    // `StateTransferPolicy::None` on join: a pure publisher needs no
    // state back.
    let publisher =
        CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "radar-station", None)?;
    publisher.create_group(FEED, Persistence::Persistent, SharedState::new())?;
    publisher.join(
        FEED,
        MemberRole::Principal,
        StateTransferPolicy::None,
        false,
    )?;

    // A permanent subscriber is online from the start (push mode).
    let permanent = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "archive", None)?;
    permanent.join(
        FEED,
        MemberRole::Observer,
        StateTransferPolicy::FullState,
        false,
    )?;

    for t in 0..5 {
        publisher.bcast_update(
            FEED,
            RADAR,
            reading("radar", t),
            DeliveryScope::SenderExclusive,
        )?;
        publisher.bcast_update(
            FEED,
            LIDAR,
            reading("lidar", t),
            DeliveryScope::SenderExclusive,
        )?;
    }
    publisher.ping()?; // flush

    // Push mode: the permanent subscriber saw all 10 readings live.
    let mut live = 0;
    while let Ok(ServerEvent::Multicast { .. }) =
        permanent.next_event_timeout(Duration::from_millis(500))
    {
        live += 1;
        if live == 10 {
            break;
        }
    }
    println!("permanent subscriber received {live} readings by push");

    // Pull mode: an asynchronous subscriber connects now, long after
    // the data was published — and only cares about the radar.
    let occasional =
        CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "field-laptop", None)?;
    let (_, transfer) = occasional.join(
        FEED,
        MemberRole::Observer,
        StateTransferPolicy::Objects(vec![RADAR]),
        false,
    )?;
    let radar_only = transfer.reconstruct();
    println!(
        "asynchronous subscriber pulled the radar backlog ({} bytes):\n{}",
        transfer.payload_len(),
        String::from_utf8_lossy(&radar_only.object(RADAR).expect("radar").materialize())
    );
    assert!(
        radar_only.object(LIDAR).is_none(),
        "lidar excluded by policy"
    );
    let last_seen = transfer.through;

    // It disconnects; publishing continues; it returns and pulls only
    // the delta (`UpdatesSince`).
    occasional.leave(FEED)?;
    for t in 5..8 {
        publisher.bcast_update(
            FEED,
            RADAR,
            reading("radar", t),
            DeliveryScope::SenderExclusive,
        )?;
    }
    publisher.ping()?;

    let (_, delta) = occasional.join(
        FEED,
        MemberRole::Observer,
        StateTransferPolicy::UpdatesSince(last_seen),
        false,
    )?;
    println!(
        "on reconnect it pulled {} delta updates (seq {} -> {})",
        delta.updates.len(),
        delta.basis,
        delta.through
    );
    assert_eq!(delta.updates.len(), 3);

    publisher.close();
    permanent.close();
    occasional.close();
    server.shutdown();
    println!("done");
    Ok(())
}
