//! Health probe: starts a stateful server, drives a little traffic,
//! then pulls the `Health` admin snapshot over the wire — the same
//! versioned JSON an operator's tooling would consume. Used by
//! `scripts/ci.sh` as the health-smoke gate.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example health_probe
//! ```

use corona::prelude::*;
use std::time::Duration;

fn main() -> corona::types::Result<()> {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr();
    let server = CoronaServer::start(Box::new(acceptor), ServerConfig::stateful(ServerId::new(1)))?;

    // A member that produces some sequenced traffic for the health
    // counters, and a listener that consumes the fan-out.
    let alice = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "alice", None)?;
    let bob = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "bob", None)?;
    let group = GroupId::new(1);
    let object = ObjectId::new(1);
    alice.create_group(group, Persistence::Persistent, SharedState::new())?;
    alice.join(
        group,
        MemberRole::Principal,
        StateTransferPolicy::FullState,
        false,
    )?;
    bob.join(
        group,
        MemberRole::Principal,
        StateTransferPolicy::FullState,
        false,
    )?;
    for i in 0..10u8 {
        alice.bcast_update(group, object, vec![i], DeliveryScope::SenderExclusive)?;
    }
    // Let bob drain his copies so delivered counters advance.
    for _ in 0..10 {
        let _ = bob.next_event_timeout(Duration::from_secs(5))?;
    }

    // The admin snapshot over the wire (any connection may ask).
    let (schema, json) = alice.health()?;
    assert_eq!(
        schema,
        corona::health::SCHEMA_VERSION,
        "wire schema matches the library"
    );
    println!("HEALTH-PROBE {json}");

    // Stats ride the same admin plane and carry the monotonic
    // snapshot sequence + uptime.
    let stats = server.stats()?;
    println!("STATS-PROBE {}", stats.render_json());
    let stats2 = server.stats()?;
    assert!(
        stats2.snapshot_seq > stats.snapshot_seq,
        "snapshot_seq is monotonic"
    );

    alice.close();
    bob.close();
    server.shutdown();
    Ok(())
}
