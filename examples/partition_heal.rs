//! Partition-hardened replication (§4.2): the coordinator is cut off
//! from its peers, loses its quorum lease, and fences itself — writers
//! get an explicit `Unavailable` instead of sequence numbers that
//! could never commit. The majority elects a successor and keeps
//! sequencing. On heal the stale coordinator discards its divergent
//! suffix, adopts the quorum history, replays the corrected window to
//! its local clients, and rejoins as a follower: every client ends on
//! the identical gap-free stream.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example partition_heal
//! ```

use corona::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const G: GroupId = GroupId(1);
const O: ObjectId = ObjectId(1);

fn main() -> corona::types::Result<()> {
    let net = MemNetwork::new();
    let peers: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("s{i}-peer")))
        .collect();
    let client_addrs: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("s{i}-client")))
        .collect();

    println!("starting 3 replicated servers (s1 = initial coordinator)...");
    let mut servers = Vec::new();
    for i in 1..=3u64 {
        let config = ReplicatedConfig {
            servers: peers.clone(),
            client_addrs: client_addrs.clone(),
            heartbeat_ms: 30,
            base_timeout_ms: 400,
            server_config: ServerConfig::stateful(ServerId::new(i)),
        };
        servers.push(ReplicatedServer::start(
            Box::new(net.listen(&format!("s{i}-client")).expect("listen")),
            Box::new(net.listen(&format!("s{i}-peer")).expect("listen")),
            Arc::new(net.dialer(&format!("s{i}-node"))),
            config,
        )?);
    }

    let connect = |name: &str, srv: u64| -> corona::types::Result<CoronaClient> {
        let conn = net
            .dial_from(name, &format!("s{srv}-client"))
            .expect("dial");
        let mut c = CoronaClient::connect(Box::new(conn), name, None)?;
        c.set_call_timeout(Duration::from_secs(15));
        Ok(c)
    };
    // Alice is homed on the server that will be stranded; bob on the
    // majority side.
    let alice = connect("alice", 1)?;
    let bob = connect("bob", 2)?;
    let mut a_stream: Vec<(u64, String)> = Vec::new();
    let mut b_stream: Vec<(u64, String)> = Vec::new();

    alice.create_group(G, Persistence::Persistent, SharedState::new())?;
    alice.join(G, MemberRole::Principal, StateTransferPolicy::None, false)?;
    bob.join(G, MemberRole::Principal, StateTransferPolicy::None, false)?;

    alice.bcast_update(G, O, &b"base;"[..], DeliveryScope::SenderInclusive)?;
    pump_until(&alice, "base;", &mut a_stream);
    pump_until(&bob, "base;", &mut b_stream);
    println!("both clients saw seq 1: base;");

    // Cut every peer link touching s1. Client links stay up: the
    // stranded coordinator keeps serving reads but must stop writes.
    println!("\npartitioning s1 away from s2 and s3...");
    for other in [2u64, 3] {
        net.block("s1-node", &format!("s{other}-peer"));
        net.block(&format!("s{other}-node"), "s1-peer");
    }

    // A write racing the lease: sequenced by the minority inside its
    // lease window, visible to alice — and doomed to be discarded.
    alice.bcast_update(G, O, &b"stale;"[..], DeliveryScope::SenderInclusive)?;
    pump_until(&alice, "stale;", &mut a_stream);
    println!("alice saw the minority-sequenced seq 2: stale; (will be retracted)");

    // The quorum lease expires: s1 fences itself.
    let health = servers[0].health_registry();
    wait_for("s1 to fence itself", || health.fenced());
    println!("s1 fenced itself (quorum_lost): writes now refuse with Unavailable");

    alice.bcast_update(G, O, &b"rejected;"[..], DeliveryScope::SenderInclusive)?;
    wait_unavailable(&alice, &mut a_stream);
    println!("alice's write was rejected: {}", ErrorCode::Unavailable);

    // The majority elects s2 and keeps going.
    wait_for("majority to elect s2", || {
        [1usize, 2].iter().all(|&i| {
            servers[i]
                .status()
                .map(|st| st.coordinator == Some(ServerId::new(2)))
                .unwrap_or(false)
        })
    });
    println!("majority elected s2; bob keeps writing");
    bob.bcast_update(G, O, &b"live;"[..], DeliveryScope::SenderInclusive)?;
    pump_until(&bob, "live;", &mut b_stream);

    // Heal: s1 hears the higher epoch, demotes, quarantines its
    // divergent suffix, adopts the quorum history, and replays the
    // corrected window to alice.
    println!("\nhealing the partition...");
    net.heal();
    wait_for("s1 to rejoin as a follower", || {
        !health.fenced()
            && servers[0]
                .status()
                .map(|st| !st.is_coordinator && st.coordinator == Some(ServerId::new(2)))
                .unwrap_or(false)
    });
    let repaired = servers[0]
        .health_registry()
        .ops_events()
        .into_iter()
        .find(|e| e.kind == "divergence_repaired")
        .expect("heal emits divergence_repaired");
    println!(
        "s1 reconciled: divergence_repaired discarded {} stale entr{}",
        repaired.value,
        if repaired.value == 1 { "y" } else { "ies" }
    );

    alice.bcast_update(G, O, &b"after;"[..], DeliveryScope::SenderInclusive)?;
    pump_until(&alice, "after;", &mut a_stream);
    pump_until(&bob, "after;", &mut b_stream);

    // The heal replay re-delivers corrected entries for seqs alice
    // already saw — last delivery per seq wins.
    let a_view = last_wins(&a_stream);
    let b_view = last_wins(&b_stream);
    println!("\nalice's final view: {a_view:?}");
    println!("bob's   final view: {b_view:?}");
    assert_eq!(a_view, b_view, "clients must converge");
    assert!(
        a_view.iter().all(|(_, p)| p != "stale;"),
        "the retracted entry must not survive"
    );
    println!("converged: identical gap-free streams, stale; retracted");

    alice.close();
    bob.close();
    for s in servers {
        s.shutdown();
    }
    println!("done");
    Ok(())
}

/// Pumps `c`'s multicast stream into `sink` until `want` arrives.
fn pump_until(c: &CoronaClient, want: &str, sink: &mut Vec<(u64, String)>) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match c.next_event_timeout(remaining.max(Duration::from_millis(1))) {
            Ok(ServerEvent::Multicast { logged, .. }) => {
                let payload = String::from_utf8_lossy(&logged.update.payload).into_owned();
                let hit = payload == want;
                sink.push((logged.seq.0, payload));
                if hit {
                    return;
                }
            }
            Ok(_) => {}
            Err(e) => panic!("no multicast {want:?} within timeout: {e}"),
        }
    }
}

/// Pumps until the explicit `Unavailable` rejection arrives.
fn wait_unavailable(c: &CoronaClient, sink: &mut Vec<(u64, String)>) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match c.next_event_timeout(remaining.max(Duration::from_millis(1))) {
            Ok(ServerEvent::Error { code, .. }) if code == ErrorCode::Unavailable.to_wire() => {
                return
            }
            Ok(ServerEvent::Multicast { logged, .. }) => sink.push((
                logged.seq.0,
                String::from_utf8_lossy(&logged.update.payload).into_owned(),
            )),
            Ok(_) => {}
            Err(e) => panic!("no Unavailable rejection within timeout: {e}"),
        }
    }
}

fn wait_for(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(15));
    }
}

fn last_wins(casts: &[(u64, String)]) -> Vec<(u64, String)> {
    let mut map = BTreeMap::new();
    for (seq, payload) in casts {
        map.insert(*seq, payload.clone());
    }
    map.into_iter().collect()
}
