//! Quickstart: a stateful Corona server over loopback TCP, two
//! clients, a persistent group, and the join-time state transfer.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use corona::prelude::*;
use std::time::Duration;

fn main() -> corona::types::Result<()> {
    // 1. Start a stateful server on an ephemeral TCP port.
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr();
    let server = CoronaServer::start(Box::new(acceptor), ServerConfig::stateful(ServerId::new(1)))?;
    println!("server listening on {addr}");

    // 2. Alice connects, creates a persistent group and joins it.
    let alice = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "alice", None)?;
    let group = GroupId::new(1);
    let notebook = ObjectId::new(1);
    alice.create_group(group, Persistence::Persistent, SharedState::new())?;
    alice.join(
        group,
        MemberRole::Principal,
        StateTransferPolicy::FullState,
        true,
    )?;
    println!("alice joined {group} as {}", alice.client_id());

    // 3. Alice writes into the shared notebook object. `bcast_update`
    //    appends (preserving history); `bcast_state` would replace.
    alice.bcast_update(
        group,
        notebook,
        &b"alice: hello, group!\n"[..],
        DeliveryScope::SenderExclusive,
    )?;
    alice.bcast_update(
        group,
        notebook,
        &b"alice: anyone here?\n"[..],
        DeliveryScope::SenderExclusive,
    )?;

    // 4. Bob joins LATER — and still receives the full shared state
    //    from the server. No existing member is involved in his join
    //    (the paper's key departure from ISIS-style state transfer).
    let bob = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "bob", None)?;
    let (members, mirror) = bob.join_mirrored(group, MemberRole::Principal, false)?;
    println!(
        "bob joined; members = {:?}",
        members
            .iter()
            .map(|m| m.display_name.as_str())
            .collect::<Vec<_>>()
    );
    println!(
        "bob's transferred notebook:\n{}",
        String::from_utf8_lossy(
            &mirror
                .state()
                .object(notebook)
                .expect("notebook")
                .materialize()
        )
    );

    // 5. Bob replies; Alice receives the sequenced multicast.
    bob.bcast_update(
        group,
        notebook,
        &b"bob: hi alice!\n"[..],
        DeliveryScope::SenderExclusive,
    )?;
    loop {
        match alice.next_event_timeout(Duration::from_secs(5))? {
            ServerEvent::Multicast { logged, .. } => {
                println!(
                    "alice received seq {}: {}",
                    logged.seq,
                    String::from_utf8_lossy(&logged.update.payload).trim_end()
                );
                break;
            }
            // Awareness notifications (bob's join) interleave with the
            // data stream; show and continue.
            other => println!("alice received: {other:?}"),
        }
    }

    // 6. Orderly shutdown.
    alice.close();
    bob.close();
    server.shutdown();
    println!("done");
    Ok(())
}
