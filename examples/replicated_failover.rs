//! The replicated Corona service (§4): a coordinator plus member
//! servers, clients spread across servers, total order across the
//! star — and a live coordinator crash, after which the first server
//! in the startup list wins the election, rebuilds the authoritative
//! state from the hot-standby replicas, and the collaboration
//! continues.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example replicated_failover
//! ```

use corona::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const G: GroupId = GroupId(1);
const O: ObjectId = ObjectId(1);

fn main() -> corona::types::Result<()> {
    let net = MemNetwork::new();
    let peers: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("s{i}-peer")))
        .collect();
    let client_addrs: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("s{i}-client")))
        .collect();

    println!("starting 3 replicated servers (s1 = initial coordinator)...");
    let mut servers = Vec::new();
    for i in 1..=3u64 {
        let config = ReplicatedConfig {
            servers: peers.clone(),
            client_addrs: client_addrs.clone(),
            heartbeat_ms: 30,
            base_timeout_ms: 150,
            server_config: ServerConfig::stateful(ServerId::new(i)),
        };
        servers.push(ReplicatedServer::start(
            Box::new(net.listen(&format!("s{i}-client")).expect("listen")),
            Box::new(net.listen(&format!("s{i}-peer")).expect("listen")),
            Arc::new(net.dialer(&format!("s{i}-node"))),
            config,
        )?);
    }

    // Clients on two different member servers.
    let connect = |name: &str, srv: u64| -> corona::types::Result<CoronaClient> {
        let conn = net
            .dial_from(name, &format!("s{srv}-client"))
            .expect("dial");
        let mut c = CoronaClient::connect(Box::new(conn), name, None)?;
        c.set_call_timeout(Duration::from_secs(15));
        Ok(c)
    };
    let bob = connect("bob", 2)?;
    let carol = connect("carol", 3)?;

    bob.create_group(G, Persistence::Persistent, SharedState::new())?;
    bob.join(G, MemberRole::Principal, StateTransferPolicy::None, false)?;
    carol.join(G, MemberRole::Principal, StateTransferPolicy::None, false)?;

    bob.bcast_update(G, O, &b"before-crash;"[..], DeliveryScope::SenderExclusive)?;
    match carol.next_event_timeout(Duration::from_secs(5))? {
        ServerEvent::Multicast { logged, .. } => println!(
            "carol (server 3) received seq {} from bob (server 2): {}",
            logged.seq,
            String::from_utf8_lossy(&logged.update.payload)
        ),
        other => println!("unexpected: {other:?}"),
    }

    // Crash the coordinator.
    println!("\ncrashing the coordinator (s1)...");
    let s1 = servers.remove(0);
    s1.shutdown();
    net.crash_node("s1-client");
    net.crash_node("s1-peer");

    // Wait for the election to settle on s2.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let agreed = servers.iter().all(|s| {
            s.status()
                .map(|st| st.coordinator == Some(ServerId::new(2)))
                .unwrap_or(false)
        });
        if agreed {
            break;
        }
        assert!(Instant::now() < deadline, "election never settled");
        std::thread::sleep(Duration::from_millis(25));
    }
    let status = servers[0].status()?;
    println!(
        "election settled: s2 is coordinator (epoch {}), rebuilt from hot-standby replicas",
        status.epoch
    );

    // The collaboration continues across the surviving servers.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        bob.bcast_update(G, O, &b"after-crash;"[..], DeliveryScope::SenderExclusive)?;
        match carol.next_event_timeout(Duration::from_millis(500)) {
            Ok(ServerEvent::Multicast { logged, .. }) => {
                println!(
                    "carol received post-failover seq {}: {}",
                    logged.seq,
                    String::from_utf8_lossy(&logged.update.payload)
                );
                break;
            }
            _ => assert!(Instant::now() < deadline, "no post-failover delivery"),
        }
    }

    // A fresh client joining after the crash still sees the full
    // history — the state survived the coordinator.
    let dave = connect("dave", 3)?;
    let (_, transfer) = dave.join(
        G,
        MemberRole::Principal,
        StateTransferPolicy::FullState,
        false,
    )?;
    println!(
        "dave's transferred state: {:?}",
        String::from_utf8_lossy(
            &transfer
                .reconstruct()
                .object(O)
                .expect("object")
                .materialize()
        )
    );

    bob.close();
    carol.close();
    dave.close();
    for s in servers {
        s.shutdown();
    }
    println!("done");
    Ok(())
}
