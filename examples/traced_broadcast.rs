//! End-to-end tracing: run one traced broadcast through a real TCP
//! server, print the per-hop latency breakdown, and export the span
//! chain as a Chrome `trace_event` file you can load in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example traced_broadcast
//! ```

use corona::prelude::*;
use corona::trace;
use std::time::Duration;

fn main() -> corona::types::Result<()> {
    // Tracing is off by default (the hot path is a single relaxed
    // atomic load); flip it on for this run.
    trace::set_enabled(true);

    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
    let addr = acceptor.local_addr();
    let server = CoronaServer::start(Box::new(acceptor), ServerConfig::stateful(ServerId::new(1)))?;

    let alice = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "alice", None)?;
    let group = GroupId::new(1);
    alice.create_group(group, Persistence::Transient, SharedState::new())?;
    alice.join(
        group,
        MemberRole::Principal,
        StateTransferPolicy::FullState,
        false,
    )?;

    // One traced broadcast, delivered back to the sender: the trace id
    // minted at submit rides the wire to the server and back, so every
    // hop lands in the same chain.
    alice.bcast_update(
        group,
        ObjectId::new(1),
        &b"traced hello\n"[..],
        DeliveryScope::SenderInclusive,
    )?;
    loop {
        if let ServerEvent::Multicast { .. } = alice.next_event_timeout(Duration::from_secs(5))? {
            break;
        }
    }

    let spans = trace::drain();
    alice.close();
    server.shutdown();
    trace::set_enabled(false);

    println!("captured {} spans:", spans.len());
    print!("{}", trace::to_jsonl(&spans));
    println!(
        "\nper-hop breakdown:\n{}",
        trace::Breakdown::from_spans(&spans).render_json()
    );

    let out = std::env::temp_dir().join("corona-trace.json");
    std::fs::write(&out, trace::to_chrome_trace(&spans)).expect("write trace");
    println!(
        "\nwrote {} — load it in chrome://tracing or https://ui.perfetto.dev",
        out.display()
    );
    Ok(())
}
