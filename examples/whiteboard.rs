//! The paper's draw tool (§5.1): "similar both to a shared notebook
//! and a whiteboard ... a canvas for drawing, taking notes, and
//! importing images" — here as a headless whiteboard where each
//! stroke is an object, the lock service serialises concurrent edits
//! of the same stroke, `bcast_state` implements erase-and-replace, and
//! the whole canvas survives a server restart (persistent group +
//! stable storage).
//!
//! Run with:
//!
//! ```sh
//! cargo run --example whiteboard
//! ```

use corona::prelude::*;

const BOARD: GroupId = GroupId(7);

/// A stroke is encoded as a list of points; the service never looks
/// inside (client-based semantics, §3.1).
fn encode_points(points: &[(i32, i32)]) -> Vec<u8> {
    points
        .iter()
        .flat_map(|(x, y)| [x.to_le_bytes(), y.to_le_bytes()].concat())
        .collect()
}

fn decode_points(bytes: &[u8]) -> Vec<(i32, i32)> {
    bytes
        .chunks_exact(8)
        .map(|c| {
            (
                i32::from_le_bytes(c[..4].try_into().expect("4 bytes")),
                i32::from_le_bytes(c[4..].try_into().expect("4 bytes")),
            )
        })
        .collect()
}

fn main() -> corona::types::Result<()> {
    let storage = std::env::temp_dir().join(format!("corona-whiteboard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&storage);

    let addr;
    {
        // ---- Session 1: two artists draw together --------------------------
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
        addr = acceptor.local_addr();
        let server = CoronaServer::start(
            Box::new(acceptor),
            ServerConfig::stateful(ServerId::new(1)).with_storage(&storage),
        )?;

        let ann = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "ann", None)?;
        let bob = CoronaClient::connect(TcpDialer.dial(&addr).expect("dial"), "bob", None)?;
        ann.create_group(BOARD, Persistence::Persistent, SharedState::new())?;
        ann.join(
            BOARD,
            MemberRole::Principal,
            StateTransferPolicy::FullState,
            false,
        )?;
        bob.join(
            BOARD,
            MemberRole::Principal,
            StateTransferPolicy::FullState,
            false,
        )?;

        let stroke1 = ObjectId::new(1);
        let stroke2 = ObjectId::new(2);

        // Ann draws stroke 1 under a lock, extending it point by point
        // (bcastUpdate appends, preserving the stroke's history).
        assert_eq!(ann.acquire_lock(BOARD, stroke1, true)?, LockResult::Granted);
        ann.bcast_state(
            BOARD,
            stroke1,
            encode_points(&[(0, 0)]),
            DeliveryScope::SenderExclusive,
        )?;
        for p in [(10, 5), (20, 12), (30, 18)] {
            ann.bcast_update(
                BOARD,
                stroke1,
                encode_points(&[p]),
                DeliveryScope::SenderExclusive,
            )?;
        }

        // Bob tries to edit the same stroke: denied while Ann holds it.
        match bob.acquire_lock(BOARD, stroke1, false)? {
            LockResult::Denied { holder } => {
                println!("bob denied stroke1 (held by {holder}) — drawing stroke2 instead")
            }
            LockResult::Granted => unreachable!("lock service failed"),
        }
        assert_eq!(
            bob.acquire_lock(BOARD, stroke2, false)?,
            LockResult::Granted
        );
        bob.bcast_state(
            BOARD,
            stroke2,
            encode_points(&[(100, 100), (90, 80)]),
            DeliveryScope::SenderExclusive,
        )?;
        bob.release_lock(BOARD, stroke2)?;

        // Ann erases and redraws stroke 1: bcastState REPLACES the
        // object, dropping its history.
        ann.bcast_state(
            BOARD,
            stroke1,
            encode_points(&[(0, 0), (50, 50)]),
            DeliveryScope::SenderExclusive,
        )?;
        ann.release_lock(BOARD, stroke1)?;

        // Flush, then stop the server mid-session.
        ann.ping()?;
        ann.close();
        bob.close();
        server.shutdown();
        println!(
            "session 1 over; server stopped (canvas persisted to {})",
            storage.display()
        );
    }

    {
        // ---- Session 2: the canvas outlives the process ---------------------
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind");
        let addr2 = acceptor.local_addr();
        let server = CoronaServer::start(
            Box::new(acceptor),
            ServerConfig::stateful(ServerId::new(1)).with_storage(&storage),
        )?;
        let cara = CoronaClient::connect(TcpDialer.dial(&addr2).expect("dial"), "cara", None)?;
        let (_, mirror) = cara.join_mirrored(BOARD, MemberRole::Principal, false)?;

        println!("session 2: cara joins the recovered board:");
        for (id, object) in mirror.state().iter() {
            let pts = decode_points(&object.materialize());
            println!("  stroke {id}: {pts:?}");
        }
        let stroke1 = mirror.state().object(ObjectId::new(1)).expect("stroke1");
        assert_eq!(
            decode_points(&stroke1.materialize()),
            vec![(0, 0), (50, 50)],
            "erase-and-replace must have replaced the stroke"
        );
        assert!(mirror.state().contains(ObjectId::new(2)));

        cara.close();
        server.shutdown();
    }

    std::fs::remove_dir_all(&storage).ok();
    println!("done");
    Ok(())
}
