#!/usr/bin/env sh
# Regenerates the paper's headline numbers and spools the
# machine-readable output into JSON files for regression tracking:
#
#   BENCH_fig3.json   - Figure 3 sweep: aggregate metrics + one per-hop
#                       latency breakdown (TRACE line) per population
#   BENCH_table2.json - Table 2: single vs replicated metrics + one
#                       breakdown per population of the replicated star
#
# Each file is a single JSON object: {"bench":..,"metrics":..,
# "trace":[..],"health":..} where every element is lifted verbatim
# from the harness's METRICS / TRACE / HEALTH lines. The health
# section carries the capacity estimate (max sustainable clients at
# p99 inside the SLO budget). Human-readable tables still go to
# stdout. --offline throughout; the workspace builds without network.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline -p corona-bench"
cargo build --release --offline -p corona-bench

# stdin: one JSON object per line -> comma-joined JSON array body
join_lines() {
    awk 'NR > 1 { printf "," } { printf "%s", $0 }'
}

echo "==> fig3_roundtrip"
out=$(./target/release/fig3_roundtrip "$@")
printf '%s\n' "$out"
metrics=$(printf '%s\n' "$out" | sed -n 's/^METRICS //p')
traces=$(printf '%s\n' "$out" | sed -n 's/^TRACE //p' | join_lines)
health=$(printf '%s\n' "$out" | sed -n 's/^HEALTH //p')

echo "==> fig3_roundtrip --conn-sweep"
sweep_out=$(./target/release/fig3_roundtrip --conn-sweep)
printf '%s\n' "$sweep_out"
conn_sweep=$(printf '%s\n' "$sweep_out" | sed -n 's/^CONNSWEEP //p' | join_lines)
# The sweep must produce entries, and at least one population must
# actually have run (an all-skipped sweep means the fd limit is too
# low to validate anything).
test -n "$conn_sweep" || {
    echo "==> FAIL: conn-sweep produced no CONNSWEEP lines" >&2
    exit 1
}
case "$conn_sweep" in
*'"skipped":false'*) ;;
*)
    echo "==> FAIL: every conn-sweep population was skipped (raise ulimit -n)" >&2
    exit 1
    ;;
esac
sweep_p99=$(printf '%s' "$conn_sweep" | sed -n 's/.*"rtt_p99_us":\([0-9]*\).*/\1/p')
test -n "$sweep_p99" || {
    echo "==> FAIL: conn-sweep entries carry no rtt_p99_us" >&2
    exit 1
}
echo "==> conn-sweep ok (rtt_p99_us: $sweep_p99)"

printf '{"bench":"fig3","metrics":%s,"trace":[%s],"health":%s,"conn_sweep":[%s]}\n' \
    "$metrics" "$traces" "$health" "$conn_sweep" >BENCH_fig3.json
echo "==> wrote BENCH_fig3.json"
# The health plane's capacity estimate must be present and carry a
# max-sustainable-clients figure.
case "$health" in
*'"max_sustainable_clients":'*) ;;
*)
    echo "==> FAIL: BENCH_fig3.json health section missing capacity estimate" >&2
    exit 1
    ;;
esac
echo "==> health capacity: $(printf '%s' "$health" | sed -n 's/.*\("max_sustainable_clients":[0-9]*\).*/\1/p')"
# Record the encode-once counter: one frame encode per multicast, flat
# in the number of recipients.
encodes=$(printf '%s' "$metrics" | sed -n 's/.*"sim\.stage\.encodes":\([0-9]*\).*/\1/p')
echo "==> encode-once: sim.stage.encodes=${encodes:-MISSING}"
test -n "$encodes"

echo "==> table2_replicated"
out=$(./target/release/table2_replicated)
printf '%s\n' "$out"
single=$(printf '%s\n' "$out" | sed -n 's/^METRICS single //p')
replicated=$(printf '%s\n' "$out" | sed -n 's/^METRICS replicated //p')
traces=$(printf '%s\n' "$out" | sed -n 's/^TRACE //p' | join_lines)
health=$(printf '%s\n' "$out" | sed -n 's/^HEALTH //p')
partition_heal=$(printf '%s\n' "$out" | sed -n 's/^PARTITION_HEAL //p')
# Partition-heal recovery (heal -> reconciled -> client streams
# resumed) is the regression baseline for later partition work.
case "$partition_heal" in
*'"p50_ms":'*'"p99_ms":'*) ;;
*)
    echo "==> FAIL: table2_replicated emitted no partition-heal recovery percentiles" >&2
    exit 1
    ;;
esac
printf '{"bench":"table2","metrics":{"single":%s,"replicated":%s},"trace":[%s],"health":%s,"partition_heal":%s}\n' \
    "$single" "$replicated" "$traces" "$health" "$partition_heal" >BENCH_table2.json
echo "==> wrote BENCH_table2.json"
echo "==> partition-heal recovery: $(printf '%s' "$partition_heal" | sed -n 's/.*\("p50_ms":[0-9]*,"p99_ms":[0-9]*\).*/\1/p')"
case "$health" in
*'"max_sustainable_clients":'*) ;;
*)
    echo "==> FAIL: BENCH_table2.json health section missing capacity estimate" >&2
    exit 1
    ;;
esac
echo "==> health capacity: $(printf '%s' "$health" | sed -n 's/.*\("max_sustainable_clients":[0-9]*\).*/\1/p')"
