#!/usr/bin/env sh
# The full local CI gate: release build, test suite, formatting,
# lints. Run from anywhere; operates on the workspace root. --offline
# throughout — the workspace vendors its external deps as shims and
# must keep building without network access.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> fault matrix: supervised-client failover under fixed fault seeds"
# 1 = kill coordinator mid-stream, 2 = kill the attached follower,
# 3 = sever the client link then kill the coordinator mid-catch-up.
for seed in 1 2 3; do
    echo "    -- CORONA_FAULT_SEED=$seed"
    CORONA_FAULT_SEED=$seed cargo test -q --offline --test failure_injection \
        supervised_clients_survive_server_kill -- --exact
done

echo "==> chaos matrix: partition/heal/flap/storm under fixed chaos seeds"
# Symmetric and asymmetric partitions, divergent-suffix heal
# reconciliation, flapping links, duplicate/reorder storms — over the
# in-memory transport and real TCP + nemesis. Seeds feed every fault
# generator; the assertions are seed-independent invariants (quorum
# fencing, epoch fencing, gap- and duplicate-free client streams).
for seed in 1 2 3; do
    echo "    -- CORONA_CHAOS_SEED=$seed"
    CORONA_CHAOS_SEED=$seed cargo test -q --offline --test chaos_matrix
done

echo "==> reactor transport gate: conformance suite + full stack + C5k smoke"
# Every Connection/Listener/Dialer contract, run against the reactor
# in both roles (and mixed with the threaded transport), then the
# whole server stack over the reactor backend — including the 5000-
# member smoke test (self-skipping when ulimit -n is too low).
cargo test -q --offline -p corona-transport --test conformance
cargo test -q --offline --test reactor_stack

echo "==> cargo build --offline --examples"
cargo build --offline --examples

echo "==> cargo bench --no-run --offline"
cargo bench --no-run --offline

echo "==> health smoke: admin Health snapshot over the wire"
# The probe asserts the wire schema matches the library; here we check
# the snapshot parses (expected top-level keys present, version 1) and
# the SLO percentiles are monotone.
health_out=$(cargo run --offline -q --example health_probe 2>/dev/null)
printf '%s\n' "$health_out" | sed -n 's/^HEALTH-PROBE //p' | awk '
{
    if ($0 !~ /^\{"schema":1,/) { print "health: wrong/missing schema version"; exit 1 }
    if ($0 !~ /"groups":\{/ || $0 !~ /"fanout":\{/ || $0 !~ /"slo":\{/) {
        print "health: snapshot missing expected sections"; exit 1
    }
    if (!match($0, /"p50_us":[0-9]+,"p90_us":[0-9]+,"p99_us":[0-9]+,"max_us":[0-9]+/)) {
        print "health: SLO percentiles missing"; exit 1
    }
    split(substr($0, RSTART, RLENGTH), parts, /[:,]/)
    p50 = parts[2] + 0; p90 = parts[4] + 0; p99 = parts[6] + 0; max = parts[8] + 0
    if (p50 > p90 || p90 > p99 || p99 > max) {
        printf "health: non-monotone SLO percentiles p50=%d p90=%d p99=%d max=%d\n", p50, p90, p99, max
        exit 1
    }
    n++
}
END {
    if (n != 1) { print "health: no HEALTH-PROBE line"; exit 1 }
    printf "health snapshot ok: schema 1, SLO percentiles monotone (p50=%d p99=%d)\n", p50, p99
}'

echo "==> bench sanity: exported histogram percentiles must be monotone"
./scripts/bench.sh >/dev/null
for f in BENCH_fig3.json BENCH_table2.json; do
    awk -v file="$f" '
    {
        line = $0
        while (match(line, /"max":[0-9]+,"mean":[0-9.]+,"p50":[0-9]+,"p90":[0-9]+,"p99":[0-9]+/)) {
            seg = substr(line, RSTART, RLENGTH)
            split(seg, parts, /[:,]/)
            max = parts[2] + 0; p50 = parts[6] + 0; p90 = parts[8] + 0; p99 = parts[10] + 0
            n++
            if (p50 > p90 || p90 > p99 || p99 > max) {
                printf "%s: non-monotone histogram: p50=%d p90=%d p99=%d max=%d\n", file, p50, p90, p99, max
                bad = 1
            }
            line = substr(line, RSTART + RLENGTH)
        }
    }
    END {
        if (n == 0) { printf "%s: no histograms found\n", file; exit 1 }
        if (bad) exit 1
        printf "%s: %d histograms monotone\n", file, n
    }' "$f"
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
