#!/usr/bin/env sh
# The full local CI gate: release build, test suite, formatting,
# lints. Run from anywhere; operates on the workspace root. --offline
# throughout — the workspace vendors its external deps as shims and
# must keep building without network access.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo build --offline --examples"
cargo build --offline --examples

echo "==> cargo bench --no-run --offline"
cargo bench --no-run --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
