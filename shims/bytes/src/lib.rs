//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the subset of the `bytes` 1.x API that Corona actually
//! uses: [`Bytes`] (a cheaply cloneable immutable buffer), [`BytesMut`]
//! (a growable write buffer), and the [`Buf`]/[`BufMut`] traits with
//! the little-endian primitive accessors. Semantics match the real
//! crate for this subset; `Bytes` clones share one allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice without copying the
    /// lifetime guarantee (the shim copies the data once; the real
    /// crate aliases it, which is indistinguishable to callers).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Copies `data` into a fresh `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a view of a subrange sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from(s.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable, contiguous write buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Truncates to at most `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`], consuming the buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, rest);
        BytesMut { data: head }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.data.clone()), f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v }
    }
}

/// Read access to a buffer of bytes (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The current contiguous unread chunk.
    fn chunk(&self) -> &[u8];
    /// Advances the read cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Copies bytes into `dst`, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write access to a buffer of bytes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_share() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        assert_eq!(b.len(), 4);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn bytesmut_put_and_freeze() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16_le(0xBEEF);
        m.put_slice(&[1, 2]);
        assert_eq!(m.len(), 5);
        let frozen = m.freeze();
        assert_eq!(&frozen[..], &[7, 0xEF, 0xBE, 1, 2]);
    }

    #[test]
    fn buf_reads() {
        let mut s: &[u8] = &[9, 1, 0];
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.get_u16_le(), 1);
        assert_eq!(s.remaining(), 0);
    }
}
