//! Offline stand-in for `criterion`.
//!
//! Implements the macro/API surface the Corona benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId`, `Throughput`, `BatchSize`, `black_box` — backed by a
//! simple wall-clock harness: a short warm-up, then a fixed number of
//! timed samples, reporting min/mean per iteration. No statistics
//! engine, no HTML reports; results go to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepts CLI args for compatibility; the shim ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target time spent measuring each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            &id.render(),
            self.sample_size,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Records the per-iteration workload size (reported, not used).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_one(&label, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally with a parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `function` at parameter `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified by parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Workload size declaration, for reporting.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`].
pub enum BatchSize {
    /// Small per-iteration setup values.
    SmallInput,
    /// Large per-iteration setup values.
    LargeInput,
    /// Rebuild the input every iteration.
    PerIteration,
}

/// Measures closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, running it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly 1ms so timer overhead stays negligible.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let sample_target = self.samples.capacity().max(1);
        for _ in 0..sample_target {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    /// Hands full timing control to the closure: `f` receives an
    /// iteration count and returns the total elapsed time for that
    /// many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // Calibrate to ~1ms per sample like `iter`.
        let mut iters: u64 = 1;
        loop {
            let elapsed = f(iters);
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        let sample_target = self.samples.capacity().max(1);
        for _ in 0..sample_target {
            let elapsed = f(self.iters_per_sample);
            self.samples.push(elapsed / self.iters_per_sample as u32);
        }
    }

    /// Times `routine` over values produced by `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR, _size: BatchSize)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        self.iters_per_sample = 1;
        let sample_target = self.samples.capacity().max(1);
        for _ in 0..sample_target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    _measurement_time: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<50} (no samples)");
        return;
    }
    bencher.samples.sort();
    let min = bencher.samples[0];
    let mean: Duration = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "bench {label:<50} min {:>12?}  mean {:>12?}  ({} samples x {} iters)",
        min,
        mean,
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
