//! Offline stand-in for `crossbeam`, covering `crossbeam::channel`.
//!
//! The build environment has no crates.io access, so this implements
//! the MPMC channel subset Corona uses — `unbounded`, `bounded`,
//! cloneable `Sender`/`Receiver`, `send`/`recv`/`try_recv`/
//! `recv_timeout`/`iter`/`len` and the matching error types — on top
//! of `std::sync::{Mutex, Condvar}`. Semantics (disconnect behaviour,
//! FIFO order, bounded blocking send) match the real crate.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled when an item is pushed or the last sender leaves.
        not_empty: Condvar,
        /// Signalled when an item is popped or the last receiver leaves.
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of a channel. Cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded FIFO channel holding at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            loop {
                if shared.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = match shared.not_full.wait(queue) {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or the
        /// channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = match shared.not_empty.wait(queue) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            if let Some(v) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let shared = &self.shared;
            let deadline = Instant::now() + timeout;
            let mut queue = shared.lock();
            loop {
                if let Some(v) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(v);
                }
                if shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = match shared.not_empty.wait_timeout(queue, deadline - now) {
                    Ok(r) => r,
                    Err(p) => p.into_inner(),
                };
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver: wake blocked senders so they observe
                // the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn mpmc_roundtrip() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx2.recv().unwrap(), 2);
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            t.join().unwrap();
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let t = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv().unwrap(), 42);
            t.join().unwrap();
        }
    }
}
