//! Offline shim of the tiny slice of [mio](https://docs.rs/mio) that
//! Corona's reactor transport uses: a readiness poller ([`Poll`] /
//! [`Events`] / [`Token`] / [`Interest`]) plus a cross-thread [`Waker`].
//!
//! The build environment has no crates.io access, so — like the other
//! `shims/` crates — this implements exactly the API surface the repo
//! exercises, nothing more. The backend is Linux `epoll(7)` reached
//! through `extern "C"` declarations against the libc that `std`
//! already links; the waker is an `eventfd(2)`. Registration is by raw
//! file descriptor (mio's `SourceFd` style) because every source the
//! reactor registers is an `std::net` socket or the waker's eventfd.
//!
//! Level-triggered only (the reactor re-arms interest explicitly),
//! which keeps the shim small and the reactor's state machine easy to
//! reason about.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

#[cfg(not(target_os = "linux"))]
compile_error!("the mio shim only implements the Linux epoll backend");

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

// ---------------------------------------------------------------------
// Raw epoll / eventfd bindings (glibc is linked by std already).
// ---------------------------------------------------------------------

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. On x86-64 glibc declares it
/// packed (`__EPOLL_PACKED`); on other architectures it is naturally
/// aligned.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------

/// Associates a readiness event with the source it was registered for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Interest in read readiness (includes peer hang-up).
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(EPOLLOUT);

    /// Combines two interests (named after the real mio's
    /// `Interest::add`, which is likewise not `std::ops::Add`).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether this interest includes read readiness.
    pub fn is_readable(self) -> bool {
        self.0 & EPOLLIN != 0
    }

    /// Whether this interest includes write readiness.
    pub fn is_writable(self) -> bool {
        self.0 & EPOLLOUT != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    events: u32,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (data, or a hang-up that a read will observe).
    pub fn is_readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    /// Write readiness (or an error a write will observe).
    pub fn is_writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }

    /// The peer closed its end (or the socket errored); a read will
    /// reach EOF / the error.
    pub fn is_closed(&self) -> bool {
        self.events & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }
}

/// A buffer of readiness events, reused across [`Poll::poll`] calls.
#[derive(Debug)]
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let events = self.events;
        let data = self.data;
        f.debug_struct("EpollEvent")
            .field("events", &events)
            .field("data", &data)
            .finish()
    }
}

impl Events {
    /// Allocates a buffer holding up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates the events of the latest poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| Event {
            token: Token(e.data as usize),
            events: e.events,
        })
    }

    /// Whether the latest poll returned no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Registers and deregisters event sources by raw fd.
///
/// Cloneable handle; all clones drive the same epoll instance, so a
/// [`Waker`] can live on a different thread than the polling loop.
#[derive(Debug, Clone)]
pub struct Registry {
    epfd: std::sync::Arc<OwnedFd>,
}

impl Registry {
    fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.0,
            data: token.0 as u64,
        };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` for `interest`, delivering events under `token`.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd` from the poller.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }
}

/// A readiness poller (one epoll instance).
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a new poller.
    ///
    /// # Errors
    ///
    /// `epoll_create1` failures (fd exhaustion).
    pub fn new() -> io::Result<Poll> {
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll {
            registry: Registry {
                epfd: std::sync::Arc::new(unsafe { OwnedFd::from_raw_fd(epfd) }),
            },
        })
    }

    /// The registration handle for this poller.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready, `timeout`
    /// elapses (`None` = forever), or a [`Waker`] fires.
    ///
    /// # Errors
    ///
    /// `epoll_wait` failures other than `EINTR` (which retries).
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 1 ns timeout does not busy-spin.
            Some(d) => {
                d.as_millis().min(i32::MAX as u128) as i32
                    + i32::from(d.subsec_nanos() % 1_000_000 != 0)
            }
        };
        events.len = 0;
        loop {
            let n = unsafe {
                epoll_wait(
                    self.registry.epfd.as_raw_fd(),
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                events.len = n as usize;
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from another thread.
///
/// Backed by an `eventfd` registered with the poller; the poll loop
/// sees a readable event under the waker's token and must call
/// [`Waker::drain`] before sleeping again (level-triggered).
#[derive(Debug)]
pub struct Waker {
    efd: OwnedFd,
}

impl Waker {
    /// Creates a waker registered under `token`.
    ///
    /// # Errors
    ///
    /// `eventfd` creation or registration failures.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let efd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        let efd = unsafe { OwnedFd::from_raw_fd(efd) };
        registry.register(efd.as_raw_fd(), token, Interest::READABLE)?;
        Ok(Waker { efd })
    }

    /// Wakes the poller. Cheap and thread-safe; coalesces with other
    /// pending wakes.
    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        let n = unsafe { write(self.efd.as_raw_fd(), (&one as *const u64).cast(), 8) };
        // EAGAIN means the counter is saturated — the poller is
        // already guaranteed to wake; that is a success for us.
        if n == 8 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Clears pending wakes so the poller can sleep again.
    pub fn drain(&self) {
        let mut buf = 0u64;
        unsafe { read(self.efd.as_raw_fd(), (&mut buf as *mut u64).cast(), 8) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let mut poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(poll.registry(), Token(usize::MAX)).unwrap());
        let w2 = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w2.wake().unwrap();
        });
        let mut events = Events::with_capacity(4);
        let start = std::time::Instant::now();
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "poll never woke");
        let tokens: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![Token(usize::MAX)]);
        waker.drain();
        handle.join().unwrap();
    }

    #[test]
    fn socket_readability_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(server.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(4);
        // Nothing to read yet: the poll must time out empty.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev: Vec<Event> = events.iter().collect();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].token(), Token(7));
        assert!(ev[0].is_readable());
        assert!(!ev[0].is_closed());

        // Peer hang-up surfaces as a closed/readable event.
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev: Vec<Event> = events.iter().collect();
        assert_eq!(ev.len(), 1);
        assert!(ev[0].is_readable());
        assert!(ev[0].is_closed());

        poll.registry().deregister(server.as_raw_fd()).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn write_interest_fires_when_buffer_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _server = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(
                client.as_raw_fd(),
                Token(1),
                Interest::READABLE | Interest::WRITABLE,
            )
            .unwrap();
        let mut events = Events::with_capacity(4);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.is_writable()));
    }
}
