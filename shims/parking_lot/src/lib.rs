//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with the poison-free `parking_lot`
//! API (lock acquisition never returns a `Result`). Performance is
//! whatever std provides, which is fine for this repo's scale; the
//! point is API compatibility without a crates.io download.

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual exclusion primitive (poison-free facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock (poison-free facade over `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// A condition variable (facade over `std::sync::Condvar`).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait on [`Condvar`].
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(&mut guard.inner, |g| {
            match self.inner.wait_timeout(g, timeout) {
                Ok((g, r)) => {
                    timed_out = r.timed_out();
                    g
                }
                Err(p) => {
                    let (g, r) = p.into_inner();
                    timed_out = r.timed_out();
                    g
                }
            }
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Replaces a guard in place through a closure that consumes and
/// returns it (needed because std's condvar wait consumes the guard).
fn take_guard<'a, T: ?Sized>(
    slot: &mut sync::MutexGuard<'a, T>,
    f: impl FnOnce(sync::MutexGuard<'a, T>) -> sync::MutexGuard<'a, T>,
) {
    // SAFETY-free version: use Option dance via unsafe-free replace is
    // impossible for guards, so route through ManuallyDrop.
    use std::mem::ManuallyDrop;
    unsafe {
        let guard = std::ptr::read(slot as *mut sync::MutexGuard<'a, T>);
        let new = f(guard);
        let mut md = ManuallyDrop::new(new);
        std::ptr::copy_nonoverlapping(&mut *md as *mut sync::MutexGuard<'a, T>, slot, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        t.join().unwrap();
        assert!(*done);
    }
}
