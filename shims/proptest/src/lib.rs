//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this implements
//! the subset of the proptest API that Corona's property tests use:
//! the [`proptest!`] macro, `any::<T>()`, integer-range and
//! regex-character-class strategies, `Just`, tuples, `prop_map`,
//! `prop_oneof!`, `collection::vec`, `option::of`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * Generation is deterministic per (test name, case index) — a
//!   failure reproduces on every run with the same case number.
//! * No shrinking: a failing case reports its index; debug by rerun.
//! * String strategies support the `"[class]{lo,hi}"` regex shape
//!   only (which is all the repo uses); anything else is treated as a
//!   literal.

#![allow(clippy::type_complexity)]

pub mod test_runner {
    /// Deterministic generator state (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator from a test identity and case index.
        pub fn deterministic(seed: u64, case: u64) -> Self {
            // Mix so that case 0/1/2... give unrelated streams.
            let mut rng = TestRng {
                state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            rng.next_u64();
            rng
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            // Multiply-shift rejection-free mapping is fine for tests.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform boolean.
        pub fn next_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// FNV-1a hash of a string, used to seed per-test streams.
    pub fn hash_name(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Test-run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps offline CI quick
        // while still exercising the property.
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates with `self`, then generates again with the
        /// strategy `f` returns (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Retries generation until `pred` accepts (bounded retries).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(move |rng: &mut TestRng| self.generate(rng)),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter: predicate rejected 1000 candidates: {}",
                self.reason
            );
        }
    }

    /// Type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.inner)(rng)
        }
    }

    /// Weighted choice among same-typed alternatives (see
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct OneOf<T> {
        arms: Vec<(u64, Box<dyn Fn(&mut TestRng) -> T>)>,
        total_weight: u64,
    }

    impl<T> OneOf<T> {
        /// Builds from boxed generator arms with uniform weight.
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
            Self::new_weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Builds from `(weight, generator)` arms.
        pub fn new_weighted(arms: Vec<(u64, Box<dyn Fn(&mut TestRng) -> T>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| *w).sum();
            assert!(total_weight > 0, "prop_oneof! needs positive total weight");
            OneOf { arms, total_weight }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, arm) in &self.arms {
                if pick < *weight {
                    return arm(rng);
                }
                pick -= weight;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),+) => {
            $(
                impl Strategy for std::ops::Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $ty
                    }
                }

                impl Strategy for std::ops::RangeInclusive<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi - lo + 1) as u64;
                        if span == 0 {
                            // Full-width u64 inclusive range.
                            return rng.next_u64() as $ty;
                        }
                        (lo + rng.below(span) as i128) as $ty
                    }
                }
            )+
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let frac = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            self.start + frac * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let frac = rng.next_u64() as f64 / u64::MAX as f64;
            self.start() + frac * (self.end() - self.start())
        }
    }

    /// Character-class string strategy compiled from a `"[class]{lo,hi}"`
    /// literal; other literals generate themselves verbatim.
    #[derive(Clone, Debug)]
    pub struct StringStrategy {
        chars: Vec<char>,
        lo: usize,
        hi: usize,
        literal: Option<String>,
    }

    impl StringStrategy {
        pub(crate) fn parse(pattern: &str) -> Self {
            if let Some(parsed) = Self::try_parse_class(pattern) {
                return parsed;
            }
            StringStrategy {
                chars: Vec::new(),
                lo: 0,
                hi: 0,
                literal: Some(pattern.to_string()),
            }
        }

        fn try_parse_class(pattern: &str) -> Option<Self> {
            let rest = pattern.strip_prefix('[')?;
            let close = rest.find(']')?;
            let class = &rest[..close];
            let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
            let (lo, hi) = match quant.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n = quant.trim().parse().ok()?;
                    (n, n)
                }
            };
            let mut chars = Vec::new();
            let cs: Vec<char> = class.chars().collect();
            let mut i = 0;
            while i < cs.len() {
                if i + 2 < cs.len() && cs[i + 1] == '-' {
                    let (a, b) = (cs[i], cs[i + 2]);
                    for c in a..=b {
                        chars.push(c);
                    }
                    i += 3;
                } else {
                    chars.push(cs[i]);
                    i += 1;
                }
            }
            if chars.is_empty() {
                return None;
            }
            Some(StringStrategy {
                chars,
                lo,
                hi,
                literal: None,
            })
        }
    }

    impl Strategy for StringStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some(lit) = &self.literal {
                return lit.clone();
            }
            let len = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..len)
                .map(|_| self.chars[rng.below(self.chars.len() as u64) as usize])
                .collect()
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            StringStrategy::parse(self).generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident $idx:tt),+))+) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.generate(rng),)+)
                    }
                }
            )+
        };
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Produces one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy produced by [`any`](crate::arbitrary::any).
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Biases integers toward interesting edges (0, max, small) the
    /// way real proptest's binary search of sub-ranges tends to.
    fn edgy_u64(rng: &mut TestRng) -> u64 {
        match rng.below(8) {
            0 => 0,
            1 => u64::MAX,
            2 => rng.below(16),
            _ => rng.next_u64(),
        }
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),+) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> $ty {
                        edgy_u64(rng) as $ty
                    }
                }
            )+
        };
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_bool()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated protocol strings tame.
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bound for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each test item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::test_runner::hash_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..u64::from(config.cases) {
                let mut __rng = $crate::test_runner::TestRng::deterministic(seed, case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Bodies may early-`return Ok(())` like real proptest,
                // so the closure returns a Result.
                let run = move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    Ok(Ok(())) => {}
                    Ok(Err(reason)) => {
                        panic!(
                            "proptest {}: rejected at case {case} of {}: {reason}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                    Err(payload) => {
                        eprintln!(
                            "proptest {}: failed at case {case} of {} (deterministic seed {seed:#x}; rerun reproduces)",
                            stringify!($name),
                            config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choice among strategies producing the same type, optionally
/// weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new_weighted(vec![
            $(
                (u64::from($weight as u32), {
                    let __s = $arm;
                    Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&__s, rng)
                    }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                })
            ),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(
                {
                    let __s = $arm;
                    Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&__s, rng)
                    }) as Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
                }
            ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u64),
        Remove(u64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<u64>().prop_map(Op::Add),
            any::<u64>().prop_map(Op::Remove),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vectors_have_bounded_len(v in crate::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn tuples_and_strings(t in (any::<bool>(), 0u8..3), s in "[a-z]{0,12}") {
            prop_assert!(t.1 < 3);
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn oneof_covers_both(ops in crate::collection::vec(arb_op(), 0..64)) {
            for op in &ops {
                match op {
                    Op::Add(_) | Op::Remove(_) => {}
                }
            }
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 0..16);
        let mut a = crate::test_runner::TestRng::deterministic(1, 2);
        let mut b = crate::test_runner::TestRng::deterministic(1, 2);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
