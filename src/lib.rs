//! # corona
//!
//! A Rust reproduction of **Corona** — *"Stateful Group Communication
//! Services"*, Radu Litiu and Atul Prakash, ICDCS 1999.
//!
//! Corona is a group multicast service whose logical server is
//! *stateful*: it maintains an up-to-date, type-opaque copy of each
//! group's shared state (a set of object-id → byte-stream pairs), so
//! joining clients receive current state directly from the service —
//! no member-to-member state transfer, no view-agreement protocol on
//! the join path, and persistent groups whose state outlives both
//! their members and (with stable storage) the server process.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`types`] — identifiers, shared-state model, wire protocol, codec;
//! * [`statelog`] — in-memory group logs, stable storage, log reduction;
//! * [`membership`] — groups, roles, locks, session policy;
//! * [`transport`] — TCP and fault-injectable in-memory transports;
//! * [`service`] — the stateful server and the client library;
//! * [`replication`] — coordinator sequencing, elections, partition
//!   merge;
//! * [`metrics`] — the shared observability registry: counters,
//!   gauges, log₂-bucketed latency histograms;
//! * [`trace`] — end-to-end distributed tracing: wire-carried trace
//!   ids, per-hop spans, a lock-free flight recorder, JSONL and
//!   `chrome://tracing` exporters;
//! * [`sim`] — the deterministic simulator reproducing the paper's
//!   evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use corona::prelude::*;
//!
//! # fn main() -> corona::types::Result<()> {
//! // An in-memory network (swap for TcpAcceptor/TcpDialer in production).
//! let net = MemNetwork::new();
//! let listener = net.listen("server").expect("listen");
//! let server = CoronaServer::start(Box::new(listener), ServerConfig::stateful(ServerId::new(1)))?;
//!
//! let alice = CoronaClient::connect(
//!     Box::new(net.dial_from("alice", "server").expect("dial")),
//!     "alice",
//!     None,
//! )?;
//! let group = GroupId::new(1);
//! alice.create_group(group, Persistence::Persistent, SharedState::new())?;
//! alice.join(group, MemberRole::Principal, StateTransferPolicy::FullState, false)?;
//! alice.bcast_update(group, ObjectId::new(1), &b"hello"[..], DeliveryScope::SenderInclusive)?;
//! alice.close();
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Identifiers, the shared-state model, the wire protocol and codec.
pub use corona_types as types;

/// In-memory and stable-storage state logs, snapshots, log reduction.
pub use corona_statelog as statelog;

/// Group membership, roles, locks, session-manager policy.
pub use corona_membership as membership;

/// Framed transports: TCP and the fault-injectable in-memory network.
pub use corona_transport as transport;

/// The Corona stateful server and client library.
pub use corona_core as service;

/// The replicated service: sequencing, election, partition merge.
pub use corona_replication as replication;

/// Lock-free counters, gauges and latency histograms shared by every
/// layer of the stack.
pub use corona_metrics as metrics;

/// Distributed tracing: wire-carried trace ids, per-hop span events,
/// a lock-free flight recorder, JSONL/Chrome exporters and latency
/// breakdowns.
pub use corona_trace as trace;

/// Live health plane: per-group health registry, watchdogs with
/// structured ops events, SLO burn-rate tracking, and the capacity
/// model behind the `Health` admin command.
pub use corona_health as health;

/// Deterministic discrete-event simulator for the paper's evaluation.
pub use corona_sim as sim;

/// The most common imports, in one place.
pub mod prelude {
    pub use corona_core::{
        client::CoronaClient, config::ServerConfig, mirror::GroupMirror, rawwire::RawMember,
        server::CoronaServer, ApplyOutcome, EventClass, FailoverConfig, LockResult, QosPolicy,
        RosterView, SharedMirror, Statefulness, TransportKind,
    };
    pub use corona_metrics::{MetricsSnapshot, Registry};
    pub use corona_replication::{ReplicatedConfig, ReplicatedServer};
    pub use corona_statelog::{ReductionPolicy, SyncPolicy};
    pub use corona_transport::{Connection, Dialer, Listener, MemNetwork, TcpAcceptor, TcpDialer};
    pub use corona_types::{
        id::{ClientId, GroupId, ObjectId, SeqNo, ServerId},
        message::{ServerEvent, StateTransfer},
        policy::{
            DeliveryScope, MemberInfo, MemberRole, MembershipChange, Persistence,
            StateTransferPolicy,
        },
        state::{LoggedUpdate, SharedState, StateUpdate, Timestamp, UpdateKind},
        CoronaError, ErrorCode,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let _ = GroupId::new(1);
        let _ = SharedState::new();
        let _ = MemNetwork::new();
    }
}
