//! Seeded chaos matrix against the replicated service: symmetric and
//! asymmetric partitions, partition-with-divergence, flapping links,
//! and duplicate/reorder storms — over the fault-injectable in-memory
//! network and over real TCP sockets wrapped by the nemesis layer.
//!
//! `CORONA_CHAOS_SEED` seeds every fault generator; the ci.sh chaos
//! step runs the matrix under several seeds. The assertions are
//! invariant checks — quorum fencing, epoch fencing, heal
//! reconciliation, gap- and duplicate-freedom of every client stream —
//! not timing checks, so every seed must pass.

use corona::prelude::*;
use corona::transport::{LinkFaults, Nemesis};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

const G: GroupId = GroupId(1);
const O: ObjectId = ObjectId(1);

fn chaos_seed() -> u64 {
    std::env::var("CORONA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

// ---------------------------------------------------------------- harness

struct Cluster {
    net: MemNetwork,
    servers: Vec<ReplicatedServer>,
}

impl Cluster {
    /// Starts `n` servers (ids 1..=n in startup order, so s1 is the
    /// initial coordinator) over a fault-seeded in-memory network.
    fn start(n: u64, heartbeat_ms: u64, base_timeout_ms: u64) -> Cluster {
        let net = MemNetwork::new();
        net.seed_faults(chaos_seed());
        let peers: Vec<(ServerId, String)> = (1..=n)
            .map(|i| (ServerId::new(i), format!("s{i}-peer")))
            .collect();
        let client_addrs: Vec<(ServerId, String)> = (1..=n)
            .map(|i| (ServerId::new(i), format!("s{i}-client")))
            .collect();
        let mut servers = Vec::new();
        for i in 1..=n {
            let config = ReplicatedConfig {
                servers: peers.clone(),
                client_addrs: client_addrs.clone(),
                heartbeat_ms,
                base_timeout_ms,
                server_config: ServerConfig::stateful(ServerId::new(i)),
            };
            servers.push(
                ReplicatedServer::start(
                    Box::new(net.listen(&format!("s{i}-client")).unwrap()),
                    Box::new(net.listen(&format!("s{i}-peer")).unwrap()),
                    Arc::new(net.dialer(&format!("s{i}-node"))),
                    config,
                )
                .unwrap(),
            );
        }
        Cluster { net, servers }
    }

    fn client(&self, name: &str, server: u64) -> CoronaClient {
        let conn = self
            .net
            .dial_from(name, &format!("s{server}-client"))
            .unwrap();
        let mut c = CoronaClient::connect(Box::new(conn), name, None).unwrap();
        c.set_call_timeout(Duration::from_secs(15));
        c
    }

    fn server(&self, id: u64) -> &ReplicatedServer {
        &self.servers[(id - 1) as usize]
    }

    /// Blackholes every peer link between `id` and the rest of the
    /// cluster, both directions. Client links stay up: the interesting
    /// case is a coordinator that keeps its clients but loses its
    /// quorum.
    fn isolate_peers(&self, id: u64) {
        for other in 1..=self.servers.len() as u64 {
            if other == id {
                continue;
            }
            self.net
                .block(&format!("s{id}-node"), &format!("s{other}-peer"));
            self.net
                .block(&format!("s{other}-node"), &format!("s{id}-peer"));
        }
    }

    /// Blocks only the inbound half of `id`'s peer links: its own
    /// heartbeats still reach everyone, but nothing — in particular no
    /// heartbeat ack — reaches it (an asymmetric partition). A peer
    /// may talk to `id` over its own dialed connection or over the one
    /// `id` dialed to it, so both directed paths are cut.
    fn deafen(&self, id: u64) {
        for other in 1..=self.servers.len() as u64 {
            if other == id {
                continue;
            }
            self.net
                .block_directed(&format!("s{other}-node"), &format!("s{id}-peer"));
            self.net
                .block_directed(&format!("s{other}-peer"), &format!("s{id}-node"));
        }
    }

    fn heal(&self) {
        self.net.heal();
    }

    /// The coordinator every listed server currently agrees on, if
    /// they all agree.
    fn coordinator_agreed(&self, ids: &[u64]) -> Option<ServerId> {
        let mut agreed = None;
        for id in ids {
            let coord = self.server(*id).status().ok()?.coordinator?;
            match agreed {
                None => agreed = Some(coord),
                Some(prev) if prev == coord => {}
                Some(_) => return None,
            }
        }
        agreed
    }

    fn wait_coordinator(&self, ids: &[u64], expect: u64, timeout: Duration) {
        wait(
            &format!("servers {ids:?} to agree on coordinator s{expect}"),
            timeout,
            || self.coordinator_agreed(ids) == Some(ServerId::new(expect)),
        );
    }

    fn fenced(&self, id: u64) -> bool {
        self.server(id).health_registry().fenced()
    }

    fn has_event(&self, id: u64, kind: &str) -> bool {
        self.server(id)
            .health_registry()
            .ops_events()
            .iter()
            .any(|e| e.kind == kind)
    }

    fn shutdown(self) {
        for s in self.servers {
            s.shutdown();
        }
    }
}

fn wait(what: &str, timeout: Duration, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(15));
    }
}

fn join(c: &CoronaClient) {
    c.join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();
}

fn bcast(c: &CoronaClient, payload: &str) {
    c.bcast_update(
        G,
        O,
        payload.as_bytes().to_vec(),
        DeliveryScope::SenderInclusive,
    )
    .unwrap();
}

/// Pumps `c`'s event stream into `sink` until a multicast carrying
/// `want` arrives.
fn wait_payload(c: &CoronaClient, want: &str, timeout: Duration, sink: &mut Vec<(u64, String)>) {
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match c.next_event_timeout(remaining.max(Duration::from_millis(1))) {
            Ok(ServerEvent::Multicast { logged, .. }) => {
                let payload = String::from_utf8_lossy(&logged.update.payload).into_owned();
                let hit = payload == want;
                sink.push((logged.seq.0, payload));
                if hit {
                    return;
                }
            }
            Ok(_) => {}
            Err(e) => panic!("no multicast {want:?} within timeout: {e}; got {sink:?}"),
        }
    }
}

/// Pumps `c`'s event stream into `sink` until a protocol error with
/// `code` arrives.
fn wait_error(c: &CoronaClient, code: ErrorCode, timeout: Duration, sink: &mut Vec<(u64, String)>) {
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match c.next_event_timeout(remaining.max(Duration::from_millis(1))) {
            Ok(ServerEvent::Error { code: got, .. }) if got == code.to_wire() => return,
            Ok(ServerEvent::Multicast { logged, .. }) => sink.push((
                logged.seq.0,
                String::from_utf8_lossy(&logged.update.payload).into_owned(),
            )),
            Ok(_) => {}
            Err(e) => panic!("no {code} error within timeout: {e}"),
        }
    }
}

/// Drains every pending event, returning multicasts as
/// `(seq, payload)`. Returns once the stream is quiet for `idle`.
fn drain(c: &CoronaClient, idle: Duration) -> Vec<(u64, String)> {
    let mut casts = Vec::new();
    while let Ok(event) = c.next_event_timeout(idle) {
        if let ServerEvent::Multicast { logged, .. } = event {
            casts.push((
                logged.seq.0,
                String::from_utf8_lossy(&logged.update.payload).into_owned(),
            ));
        }
    }
    casts
}

/// Collapses a raw stream into its final view. The heal replay path
/// deliberately re-delivers a corrected entry for a seq the client
/// already saw (a retraction), so the LAST delivery per seq wins.
fn last_wins(casts: &[(u64, String)]) -> Vec<(u64, String)> {
    let mut map = BTreeMap::new();
    for (seq, payload) in casts {
        map.insert(*seq, payload.clone());
    }
    map.into_iter().collect()
}

fn assert_contiguous(view: &[(u64, String)], what: &str) {
    for (i, (seq, _)) in view.iter().enumerate() {
        assert_eq!(*seq, i as u64 + 1, "{what}: gap in view {view:?}");
    }
}

// --------------------------------------------------------------- scenarios

/// Symmetric partition of the coordinator: it must lose its quorum
/// lease, fence itself (explicit `Unavailable` to writers, zero
/// entries sequenced), and — after the heal — rejoin as a follower
/// with the missed suffix replayed to its local clients.
#[test]
fn partition_fences_minority_coordinator_and_heals() {
    let cluster = Cluster::start(3, 30, 250);
    let alice = cluster.client("alice", 1);
    let bob = cluster.client("bob", 2);
    let mut a_stream = Vec::new();
    let mut b_stream = Vec::new();

    alice
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    join(&alice);
    join(&bob);
    bcast(&alice, "a0;");
    wait_payload(&alice, "a0;", Duration::from_secs(10), &mut a_stream);
    wait_payload(&bob, "a0;", Duration::from_secs(10), &mut b_stream);

    cluster.isolate_peers(1);
    wait("s1 to fence itself", Duration::from_secs(10), || {
        cluster.fenced(1)
    });
    assert!(
        cluster.has_event(1, "quorum_lost"),
        "no quorum_lost ops event on the fenced coordinator"
    );

    // Sequencing is refused while fenced: the writer gets an explicit
    // Unavailable, not silence and not a stale-epoch entry.
    bcast(&alice, "dead;");
    wait_error(
        &alice,
        ErrorCode::Unavailable,
        Duration::from_secs(10),
        &mut a_stream,
    );
    assert!(
        cluster.server(1).metrics().counter("repl.fenced.rejects") >= 1,
        "fenced reject not metered"
    );

    // The majority elects s2 and keeps serving writes.
    cluster.wait_coordinator(&[2, 3], 2, Duration::from_secs(10));
    bcast(&bob, "b1;");
    wait_payload(&bob, "b1;", Duration::from_secs(10), &mut b_stream);

    cluster.heal();
    wait(
        "s1 to rejoin as follower and reconcile",
        Duration::from_secs(20),
        || {
            !cluster.fenced(1)
                && cluster
                    .server(1)
                    .status()
                    .map(|st| st.coordinator == Some(ServerId::new(2)) && !st.is_coordinator)
                    .unwrap_or(false)
        },
    );

    // End-to-end after the heal: alice writes through the new
    // coordinator; everyone (including alice, who missed b1 during the
    // partition) converges on the same stream.
    bcast(&alice, "a2;");
    wait_payload(&alice, "a2;", Duration::from_secs(15), &mut a_stream);
    wait_payload(&bob, "a2;", Duration::from_secs(15), &mut b_stream);
    a_stream.extend(drain(&alice, Duration::from_millis(400)));
    b_stream.extend(drain(&bob, Duration::from_millis(400)));

    let a_view = last_wins(&a_stream);
    let b_view = last_wins(&b_stream);
    assert_eq!(a_view, b_view, "client views diverged across the partition");
    assert_contiguous(&a_view, "partition-heal");
    assert_eq!(a_view.len(), 3, "unexpected entries: {a_view:?}");
    assert!(
        a_view.iter().all(|(_, p)| p != "dead;"),
        "fenced coordinator sequenced an entry after lease loss: {a_view:?}"
    );
    cluster.shutdown();
}

/// Divergent-suffix heal: the coordinator sequences an entry inside
/// its lease window after the partition starts (the suffix the quorum
/// never saw), the majority moves on, and the heal must retract the
/// stale suffix via the merge policies — surfaced as a
/// `divergence_repaired` ops event — and converge every client.
#[test]
fn stale_suffix_discarded_and_repaired_after_heal() {
    let cluster = Cluster::start(3, 30, 600);
    let alice = cluster.client("alice", 1);
    let bob = cluster.client("bob", 2);
    let mut a_stream = Vec::new();
    let mut b_stream = Vec::new();

    alice
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    join(&alice);
    join(&bob);
    bcast(&alice, "base;");
    wait_payload(&alice, "base;", Duration::from_secs(10), &mut a_stream);
    wait_payload(&bob, "base;", Duration::from_secs(10), &mut b_stream);

    cluster.isolate_peers(1);
    // Still inside the lease window: the soon-to-be-minority
    // coordinator sequences one more entry. This manufactures the
    // divergent suffix the heal must repair.
    bcast(&alice, "stale;");
    wait_payload(&alice, "stale;", Duration::from_secs(5), &mut a_stream);

    cluster.wait_coordinator(&[2, 3], 2, Duration::from_secs(15));
    bcast(&bob, "live;");
    wait_payload(&bob, "live;", Duration::from_secs(10), &mut b_stream);

    cluster.heal();
    wait(
        "s1 to rejoin and reconcile its stale suffix",
        Duration::from_secs(20),
        || {
            !cluster.fenced(1)
                && cluster
                    .server(1)
                    .status()
                    .map(|st| st.coordinator == Some(ServerId::new(2)))
                    .unwrap_or(false)
        },
    );
    let repaired = cluster
        .server(1)
        .health_registry()
        .ops_events()
        .into_iter()
        .find(|e| e.kind == "divergence_repaired")
        .expect("no divergence_repaired ops event after heal");
    assert!(
        repaired.value >= 1,
        "stale suffix not counted as discarded: {repaired:?}"
    );

    bcast(&alice, "after;");
    wait_payload(&alice, "after;", Duration::from_secs(15), &mut a_stream);
    wait_payload(&bob, "after;", Duration::from_secs(15), &mut b_stream);
    a_stream.extend(drain(&alice, Duration::from_millis(400)));
    b_stream.extend(drain(&bob, Duration::from_millis(400)));

    // Alice saw the retraction (stale seq 2, then the corrected seq 2
    // on replay): her FINAL view must equal the quorum history.
    let a_view = last_wins(&a_stream);
    let b_view = last_wins(&b_stream);
    let want: Vec<(u64, String)> = vec![
        (1, "base;".into()),
        (2, "live;".into()),
        (3, "after;".into()),
    ];
    assert_eq!(a_view, want, "stale suffix survived the heal");
    assert_eq!(b_view, want, "quorum-side entry lost");
    // The quorum side must never have observed the stale entry, and
    // none of its deliveries were retracted.
    assert_eq!(
        b_stream.len(),
        b_view.len(),
        "quorum-side client saw a retraction: {b_stream:?}"
    );
    cluster.shutdown();
}

/// Asymmetric partition: followers still hear the coordinator's
/// heartbeats (so nobody elects), but its acks are gone, so the lease
/// lapses. The coordinator must fence — making the outage explicit
/// rather than silent — and un-fence in place once acks return,
/// without an epoch change.
#[test]
fn asymmetric_partition_fences_coordinator_without_election() {
    let cluster = Cluster::start(3, 30, 250);
    let alice = cluster.client("alice", 1);
    let bob = cluster.client("bob", 2);
    let mut a_stream = Vec::new();
    let mut b_stream = Vec::new();

    alice
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    join(&alice);
    join(&bob);
    bcast(&alice, "pre;");
    wait_payload(&alice, "pre;", Duration::from_secs(10), &mut a_stream);
    wait_payload(&bob, "pre;", Duration::from_secs(10), &mut b_stream);
    let epoch_before = cluster.server(2).status().unwrap().epoch;

    cluster.deafen(1);
    wait("s1 to fence itself", Duration::from_secs(10), || {
        cluster.fenced(1)
    });
    assert!(cluster.has_event(1, "quorum_lost"));
    // Heartbeats still flow outward, so the followers never elect.
    let st2 = cluster.server(2).status().unwrap();
    assert_eq!(st2.coordinator, Some(ServerId::new(1)));
    assert_eq!(st2.epoch, epoch_before, "spurious election under deafness");

    bcast(&alice, "dead;");
    wait_error(
        &alice,
        ErrorCode::Unavailable,
        Duration::from_secs(10),
        &mut a_stream,
    );

    cluster.heal();
    wait("s1 to regain its lease", Duration::from_secs(10), || {
        !cluster.fenced(1)
    });
    assert!(
        cluster.has_event(1, "quorum_regained"),
        "no quorum_regained ops event"
    );
    let st2 = cluster.server(2).status().unwrap();
    assert_eq!(st2.coordinator, Some(ServerId::new(1)));
    assert_eq!(st2.epoch, epoch_before, "heal should not change the epoch");

    bcast(&alice, "post;");
    wait_payload(&alice, "post;", Duration::from_secs(15), &mut a_stream);
    wait_payload(&bob, "post;", Duration::from_secs(15), &mut b_stream);
    let a_view = last_wins(&a_stream);
    let b_view = last_wins(&b_stream);
    assert_eq!(a_view, b_view);
    assert_contiguous(&a_view, "asymmetric");
    assert_eq!(a_view.len(), 2, "fenced entry leaked: {a_view:?}");
    cluster.shutdown();
}

/// Flapping links: the acting coordinator is repeatedly partitioned
/// away and healed. Each cycle forces a fence, an election, and a heal
/// reconciliation; after the storm every client converges on one
/// gap-free stream containing everybody's liveness marker.
#[test]
fn flapping_partitions_converge_to_identical_streams() {
    let cluster = Cluster::start(3, 30, 150);
    let clients = [
        cluster.client("alice", 1),
        cluster.client("bob", 2),
        cluster.client("carol", 3),
    ];
    let mut streams: Vec<Vec<(u64, String)>> = vec![Vec::new(), Vec::new(), Vec::new()];

    clients[0]
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    for c in &clients {
        join(c);
    }
    bcast(&clients[0], "m0;");
    for (c, stream) in clients.iter().zip(streams.iter_mut()) {
        wait_payload(c, "m0;", Duration::from_secs(10), stream);
    }

    let all = [1u64, 2, 3];
    for cycle in 0..3 {
        // Settle, then cut the acting coordinator off.
        let mut agreed = None;
        wait(
            &format!("pre-cycle-{cycle} convergence"),
            Duration::from_secs(20),
            || {
                if all.iter().any(|id| cluster.fenced(*id)) {
                    return false;
                }
                agreed = cluster.coordinator_agreed(&all);
                agreed.is_some()
            },
        );
        let coord = agreed.unwrap().raw();
        let survivors: Vec<u64> = all.iter().copied().filter(|id| *id != coord).collect();
        cluster.isolate_peers(coord);

        let mut next = None;
        wait(
            &format!("cycle-{cycle} survivors to elect"),
            Duration::from_secs(15),
            || {
                next = cluster.coordinator_agreed(&survivors);
                next.is_some_and(|c| c.raw() != coord)
            },
        );
        cluster.heal();
        let target = next.unwrap();
        wait(
            &format!("cycle-{cycle} cluster to reconverge on {target}"),
            Duration::from_secs(20),
            || {
                cluster.coordinator_agreed(&all) == Some(target)
                    && all.iter().all(|id| !cluster.fenced(*id))
            },
        );
    }

    // Every client proves end-to-end liveness with a retried marker
    // (a forward handed to a dying coordinator is lost for good, so
    // each send waits for its own sender-inclusive echo).
    for (i, (c, stream)) in clients.iter().zip(streams.iter_mut()).enumerate() {
        let marker = format!("mark{i};");
        let deadline = Instant::now() + Duration::from_secs(40);
        'sent: loop {
            bcast(c, &marker);
            let confirm = Instant::now() + Duration::from_secs(4);
            while Instant::now() < confirm {
                if let Ok(ServerEvent::Multicast { logged, .. }) =
                    c.next_event_timeout(Duration::from_millis(200))
                {
                    let payload = String::from_utf8_lossy(&logged.update.payload).into_owned();
                    let hit = payload == marker;
                    stream.push((logged.seq.0, payload));
                    if hit {
                        break 'sent;
                    }
                }
            }
            assert!(Instant::now() < deadline, "{marker} never sequenced");
        }
    }
    for (c, stream) in clients.iter().zip(streams.iter_mut()) {
        stream.extend(drain(c, Duration::from_millis(800)));
    }

    let views: Vec<Vec<(u64, String)>> = streams.iter().map(|s| last_wins(s)).collect();
    assert_eq!(views[0], views[1], "views diverged after flapping");
    assert_eq!(views[1], views[2], "views diverged after flapping");
    assert_contiguous(&views[0], "flapping");
    for i in 0..3 {
        let marker = format!("mark{i};");
        assert!(
            views[0].iter().any(|(_, p)| *p == marker),
            "{marker} lost: {:?}",
            views[0]
        );
    }
    cluster.shutdown();
}

/// Duplicate/reorder storm on every peer link: transport-level
/// duplicates must be absorbed (forward dedup at the coordinator,
/// sequenced-append suppression at the replicas) and reorders healed
/// by the gap-refresh path, leaving every client stream exactly-once
/// and in order.
#[test]
fn duplicate_reorder_storm_keeps_streams_exact() {
    let cluster = Cluster::start(3, 30, 300);
    let clients = [
        cluster.client("alice", 1),
        cluster.client("bob", 2),
        cluster.client("carol", 3),
    ];
    clients[0]
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    for c in &clients {
        join(c);
    }

    // Storm only the peer mesh; acks are delayed/duplicated but never
    // dropped, so the quorum lease must hold throughout.
    let storm = LinkFaults {
        drop_per_mille: 0,
        dup_per_mille: 150,
        reorder_per_mille: 150,
        delay_ms: 1,
    };
    for i in 1..=3u64 {
        for j in 1..=3u64 {
            if i != j {
                cluster
                    .net
                    .set_link_faults(&format!("s{i}-node"), &format!("s{j}-peer"), storm);
            }
        }
    }

    const N: usize = 24;
    for k in 0..N {
        bcast(&clients[k % 3], &format!("p{k:02};"));
    }

    let mut views = Vec::new();
    for c in &clients {
        let mut raw: Vec<(u64, String)> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let deadline = Instant::now() + Duration::from_secs(40);
        while seen.len() < N {
            match c.next_event_timeout(Duration::from_millis(500)) {
                Ok(ServerEvent::Multicast { logged, .. }) => {
                    seen.insert(logged.seq.0);
                    raw.push((
                        logged.seq.0,
                        String::from_utf8_lossy(&logged.update.payload).into_owned(),
                    ));
                }
                Ok(_) => {}
                Err(_) => assert!(
                    Instant::now() < deadline,
                    "storm stalled the stream: got {} of {N}: {raw:?}",
                    seen.len()
                ),
            }
        }
        // A grace window to catch any trailing duplicate delivery.
        raw.extend(drain(c, Duration::from_millis(600)));
        assert_eq!(
            raw.len(),
            N,
            "duplicate delivery under dup/reorder storm: {raw:?}"
        );
        let view = last_wins(&raw);
        assert_contiguous(&view, "storm");
        views.push(view);
    }
    assert_eq!(views[0], views[1], "storm broke total order");
    assert_eq!(views[1], views[2], "storm broke total order");
    assert!(!cluster.fenced(1), "storm must not cost the quorum lease");
    cluster.shutdown();
}

/// The partition-heal scenario over real TCP sockets, with the
/// nemesis layer wrapped around every peer listener and dialer:
/// partitions sever crossing links and refuse re-dials, so the fault
/// is a genuine socket-level outage rather than an in-memory rule.
#[test]
fn tcp_partition_heal_with_nemesis() {
    let registry = Registry::new();
    let nem = Nemesis::new(chaos_seed(), &registry);

    let mut client_listeners = Vec::new();
    let mut peer_listeners = Vec::new();
    for _ in 0..3 {
        client_listeners.push(TcpAcceptor::bind("127.0.0.1:0").unwrap());
        peer_listeners.push(TcpAcceptor::bind("127.0.0.1:0").unwrap());
    }
    let peers: Vec<(ServerId, String)> = peer_listeners
        .iter()
        .enumerate()
        .map(|(i, l)| (ServerId::new(i as u64 + 1), l.local_addr()))
        .collect();
    let client_addrs: Vec<(ServerId, String)> = client_listeners
        .iter()
        .enumerate()
        .map(|(i, l)| (ServerId::new(i as u64 + 1), l.local_addr()))
        .collect();

    let mut servers = Vec::new();
    for (i, (client_listener, peer_listener)) in
        client_listeners.into_iter().zip(peer_listeners).enumerate()
    {
        let id = i as u64 + 1;
        let node = format!("s{id}");
        let config = ReplicatedConfig {
            servers: peers.clone(),
            client_addrs: client_addrs.clone(),
            heartbeat_ms: 30,
            base_timeout_ms: 250,
            server_config: ServerConfig::stateful(ServerId::new(id)),
        };
        servers.push(
            ReplicatedServer::start(
                Box::new(client_listener),
                nem.wrap_listener(&node, Box::new(peer_listener)),
                Arc::from(nem.wrap_dialer(&node, Box::new(TcpDialer))),
                config,
            )
            .unwrap(),
        );
    }

    let connect = |name: &str, server: usize| {
        let conn = TcpDialer.dial(&client_addrs[server - 1].1).unwrap();
        let mut c = CoronaClient::connect(conn, name, None).unwrap();
        c.set_call_timeout(Duration::from_secs(15));
        c
    };
    let alice = connect("alice", 1);
    let bob = connect("bob", 2);
    let mut a_stream = Vec::new();
    let mut b_stream = Vec::new();

    alice
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    join(&alice);
    join(&bob);
    bcast(&alice, "pre;");
    wait_payload(&alice, "pre;", Duration::from_secs(10), &mut a_stream);
    wait_payload(&bob, "pre;", Duration::from_secs(10), &mut b_stream);

    nem.partition(&[&["s1"], &["s2", "s3"]]);
    wait(
        "s1 to fence itself over TCP",
        Duration::from_secs(10),
        || servers[0].health_registry().fenced(),
    );
    assert!(servers[0]
        .health_registry()
        .ops_events()
        .iter()
        .any(|e| e.kind == "quorum_lost"));

    wait("s2/s3 to elect s2", Duration::from_secs(15), || {
        servers[1..].iter().all(|s| {
            s.status()
                .map(|st| st.coordinator == Some(ServerId::new(2)))
                .unwrap_or(false)
        })
    });
    bcast(&bob, "mid;");
    wait_payload(&bob, "mid;", Duration::from_secs(10), &mut b_stream);

    nem.heal();
    wait(
        "s1 to rejoin and reconcile over TCP",
        Duration::from_secs(20),
        || {
            !servers[0].health_registry().fenced()
                && servers[0]
                    .status()
                    .map(|st| st.coordinator == Some(ServerId::new(2)) && !st.is_coordinator)
                    .unwrap_or(false)
        },
    );

    bcast(&alice, "post;");
    wait_payload(&alice, "post;", Duration::from_secs(15), &mut a_stream);
    wait_payload(&bob, "post;", Duration::from_secs(15), &mut b_stream);
    a_stream.extend(drain(&alice, Duration::from_millis(400)));
    b_stream.extend(drain(&bob, Duration::from_millis(400)));

    let a_view = last_wins(&a_stream);
    let b_view = last_wins(&b_stream);
    assert_eq!(a_view, b_view, "TCP partition-heal diverged the clients");
    assert_contiguous(&a_view, "tcp-partition-heal");
    assert_eq!(a_view.len(), 3, "unexpected entries: {a_view:?}");

    alice.close();
    bob.close();
    for s in servers {
        s.shutdown();
    }
}
