//! Smoke tests asserting that every experiment harness reproduces the
//! paper's qualitative result (the EXPERIMENTS.md claims, enforced in
//! CI). The full sweeps live in `corona-bench`; these runs are scaled
//! down to keep the suite fast.

use corona::prelude::*;
use corona::sim::{roundtrip, throughput, ExperimentConfig, PENTIUM_II_200, ULTRASPARC_1};

#[test]
fn fig3_linear_and_stateful_close_to_stateless() {
    let mut prev = 0.0;
    for n in [10, 20, 40, 60] {
        let stateful = roundtrip(ExperimentConfig {
            n_clients: n,
            messages: 60,
            ..ExperimentConfig::default()
        });
        let stateless = roundtrip(ExperimentConfig {
            n_clients: n,
            stateful: false,
            messages: 60,
            ..ExperimentConfig::default()
        });
        assert!(stateful.mean_ms > prev, "monotone growth");
        prev = stateful.mean_ms;
        let gap = (stateful.mean_ms - stateless.mean_ms) / stateless.mean_ms;
        assert!(
            gap.abs() < 0.05,
            "curves must nearly coincide, gap {gap:.3}"
        );
    }
}

#[test]
fn fig3_10k_has_steeper_slope() {
    let slope = |payload: usize| {
        let lo = roundtrip(ExperimentConfig {
            n_clients: 10,
            payload,
            messages: 40,
            ..ExperimentConfig::default()
        })
        .mean_ms;
        let hi = roundtrip(ExperimentConfig {
            n_clients: 50,
            payload,
            messages: 40,
            ..ExperimentConfig::default()
        })
        .mean_ms;
        (hi - lo) / 40.0
    };
    assert!(slope(10_000) > 2.0 * slope(1_000));
}

#[test]
fn table1_ordering_holds() {
    let run = |payload, profile| {
        throughput(
            ExperimentConfig {
                n_clients: 6,
                payload,
                server_profile: profile,
                ..ExperimentConfig::default()
            },
            20_000_000,
        )
        .kbytes_per_sec
    };
    assert!(run(10_000, ULTRASPARC_1) > run(1_000, ULTRASPARC_1));
    assert!(run(1_000, PENTIUM_II_200) > run(1_000, ULTRASPARC_1));
}

#[test]
fn table2_replication_wins_and_gap_widens() {
    let mut gaps = Vec::new();
    for n in [100, 200, 300] {
        let base = ExperimentConfig {
            n_clients: n,
            messages: 20,
            closed_loop: true,
            ..ExperimentConfig::default()
        };
        let single = roundtrip(ExperimentConfig {
            n_servers: 1,
            ..base
        })
        .mean_ms;
        let multi = roundtrip(ExperimentConfig {
            n_servers: 6,
            ..base
        })
        .mean_ms;
        assert!(multi < single, "{n}: {multi} !< {single}");
        gaps.push(single - multi);
    }
    assert!(
        gaps.windows(2).all(|w| w[0] < w[1]),
        "gap must widen: {gaps:?}"
    );
}

/// Runs a fixed two-group workload (two members, five broadcasts into
/// g1, three into g2, all sender-inclusive) against a server built
/// from `config` and returns its metrics snapshot.
fn metered_workload(config: ServerConfig) -> MetricsSnapshot {
    let net = MemNetwork::new();
    let server = CoronaServer::start(Box::new(net.listen("server").unwrap()), config).unwrap();
    let alice = CoronaClient::connect(
        Box::new(net.dial_from("alice", "server").unwrap()),
        "alice",
        None,
    )
    .unwrap();
    let bea = CoronaClient::connect(
        Box::new(net.dial_from("bea", "server").unwrap()),
        "bea",
        None,
    )
    .unwrap();

    let (g1, g2) = (GroupId::new(1), GroupId::new(2));
    for g in [g1, g2] {
        alice
            .create_group(g, Persistence::Transient, SharedState::new())
            .unwrap();
        alice
            .join(g, MemberRole::Principal, StateTransferPolicy::None, false)
            .unwrap();
        bea.join(g, MemberRole::Principal, StateTransferPolicy::None, false)
            .unwrap();
    }
    let o = ObjectId::new(1);
    for i in 0..5u8 {
        alice
            .bcast_update(g1, o, vec![i], DeliveryScope::SenderInclusive)
            .unwrap();
    }
    for i in 0..3u8 {
        bea.bcast_update(g2, o, vec![i], DeliveryScope::SenderInclusive)
            .unwrap();
    }
    // A ping per client syncs the dispatcher past each one's requests.
    alice.ping().unwrap();
    bea.ping().unwrap();

    let snap = server.metrics().unwrap();
    alice.close();
    bea.close();
    server.shutdown();
    snap
}

#[test]
fn per_group_delivery_counters_sum_to_the_total() {
    let snap = metered_workload(ServerConfig::stateful(ServerId::new(1)));
    let total = snap.counter("core.deliveries");
    // Sender-inclusive fan-out to two members: 8 broadcasts x 2.
    assert_eq!(total, 16);
    assert_eq!(
        snap.counter_sum("core.group."),
        total,
        "per-group deliveries must partition the total"
    );
    assert_eq!(snap.counter("core.group.g1.deliveries"), 10);
    assert_eq!(snap.counter("core.group.g2.deliveries"), 6);
}

#[test]
fn stateful_and_stateless_sequence_the_same_broadcast_count() {
    let stateful = metered_workload(ServerConfig::stateful(ServerId::new(1)));
    let stateless = metered_workload(ServerConfig::stateless(ServerId::new(1)));
    assert_eq!(stateful.counter("core.broadcasts"), 8);
    assert_eq!(
        stateful.counter("core.broadcasts"),
        stateless.counter("core.broadcasts"),
        "statefulness must not change how many broadcasts are sequenced"
    );
}

#[test]
fn nothing_is_shed_with_qos_disabled() {
    let snap = metered_workload(ServerConfig::stateful(ServerId::new(1)));
    assert_eq!(snap.counter("server.shed"), 0);
    assert_eq!(snap.counter_sum("server.group."), 0);
}

#[test]
fn abl_log_on_path_disk_hurts() {
    let off = roundtrip(ExperimentConfig {
        n_clients: 20,
        messages: 40,
        ..ExperimentConfig::default()
    })
    .mean_ms;
    let on = roundtrip(ExperimentConfig {
        n_clients: 20,
        messages: 40,
        disk_on_critical_path: true,
        ..ExperimentConfig::default()
    })
    .mean_ms;
    assert!(on > off * 1.2);
}
