//! Smoke tests asserting that every experiment harness reproduces the
//! paper's qualitative result (the EXPERIMENTS.md claims, enforced in
//! CI). The full sweeps live in `corona-bench`; these runs are scaled
//! down to keep the suite fast.

use corona::sim::{roundtrip, throughput, ExperimentConfig, PENTIUM_II_200, ULTRASPARC_1};

#[test]
fn fig3_linear_and_stateful_close_to_stateless() {
    let mut prev = 0.0;
    for n in [10, 20, 40, 60] {
        let stateful = roundtrip(ExperimentConfig {
            n_clients: n,
            messages: 60,
            ..ExperimentConfig::default()
        });
        let stateless = roundtrip(ExperimentConfig {
            n_clients: n,
            stateful: false,
            messages: 60,
            ..ExperimentConfig::default()
        });
        assert!(stateful.mean_ms > prev, "monotone growth");
        prev = stateful.mean_ms;
        let gap = (stateful.mean_ms - stateless.mean_ms) / stateless.mean_ms;
        assert!(gap.abs() < 0.05, "curves must nearly coincide, gap {gap:.3}");
    }
}

#[test]
fn fig3_10k_has_steeper_slope() {
    let slope = |payload: usize| {
        let lo = roundtrip(ExperimentConfig {
            n_clients: 10,
            payload,
            messages: 40,
            ..ExperimentConfig::default()
        })
        .mean_ms;
        let hi = roundtrip(ExperimentConfig {
            n_clients: 50,
            payload,
            messages: 40,
            ..ExperimentConfig::default()
        })
        .mean_ms;
        (hi - lo) / 40.0
    };
    assert!(slope(10_000) > 2.0 * slope(1_000));
}

#[test]
fn table1_ordering_holds() {
    let run = |payload, profile| {
        throughput(
            ExperimentConfig {
                n_clients: 6,
                payload,
                server_profile: profile,
                ..ExperimentConfig::default()
            },
            20_000_000,
        )
        .kbytes_per_sec
    };
    assert!(run(10_000, ULTRASPARC_1) > run(1_000, ULTRASPARC_1));
    assert!(run(1_000, PENTIUM_II_200) > run(1_000, ULTRASPARC_1));
}

#[test]
fn table2_replication_wins_and_gap_widens() {
    let mut gaps = Vec::new();
    for n in [100, 200, 300] {
        let base = ExperimentConfig {
            n_clients: n,
            messages: 20,
            closed_loop: true,
            ..ExperimentConfig::default()
        };
        let single = roundtrip(ExperimentConfig { n_servers: 1, ..base }).mean_ms;
        let multi = roundtrip(ExperimentConfig { n_servers: 6, ..base }).mean_ms;
        assert!(multi < single, "{n}: {multi} !< {single}");
        gaps.push(single - multi);
    }
    assert!(gaps.windows(2).all(|w| w[0] < w[1]), "gap must widen: {gaps:?}");
}

#[test]
fn abl_log_on_path_disk_hurts() {
    let off = roundtrip(ExperimentConfig {
        n_clients: 20,
        messages: 40,
        ..ExperimentConfig::default()
    })
    .mean_ms;
    let on = roundtrip(ExperimentConfig {
        n_clients: 20,
        messages: 40,
        disk_on_critical_path: true,
        ..ExperimentConfig::default()
    })
    .mean_ms;
    assert!(on > off * 1.2);
}
