//! Failure-injection integration tests: client crashes and
//! reconnection catch-up (the companion-paper territory the paper
//! cites in §4.2), network partitions between halves of a replicated
//! deployment, and the application-selectable partition merge.

use corona::prelude::*;
use corona::replication::{find_divergence, merge, MergeResolution, Side};
use corona::statelog::{GroupLog, StableStore, SyncPolicy};
use std::sync::Arc;
use std::time::{Duration, Instant};

const G: GroupId = GroupId(1);
const O: ObjectId = ObjectId(1);

#[test]
fn client_crash_releases_locks_and_membership() {
    let net = MemNetwork::new();
    let listener = net.listen("server").unwrap();
    let server =
        CoronaServer::start(Box::new(listener), ServerConfig::stateful(ServerId::new(1))).unwrap();

    let stable = CoronaClient::connect(
        Box::new(net.dial_from("stable", "server").unwrap()),
        "stable",
        None,
    )
    .unwrap();
    let flaky = CoronaClient::connect(
        Box::new(net.dial_from("flaky", "server").unwrap()),
        "flaky",
        None,
    )
    .unwrap();

    stable
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    stable
        .join(G, MemberRole::Principal, StateTransferPolicy::None, true)
        .unwrap();
    flaky
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();
    assert_eq!(
        flaky.acquire_lock(G, O, false).unwrap(),
        LockResult::Granted
    );

    // The stable client queues behind the lock, then the holder's link
    // is severed (a crash, not a goodbye).
    let flaky_id = flaky.client_id();
    let waiter = std::thread::spawn({
        let net = net.clone();
        move || {
            std::thread::sleep(Duration::from_millis(100));
            net.sever("flaky", "server");
        }
    });
    // Blocking acquire resolves once the server detects the crash and
    // hands the lock over.
    assert_eq!(
        stable.acquire_lock(G, O, true).unwrap(),
        LockResult::Granted
    );
    waiter.join().unwrap();

    // Awareness: the survivor hears about the disconnect.
    let mut saw_disconnect = false;
    while let Ok(event) = stable.next_event_timeout(Duration::from_secs(2)) {
        if let ServerEvent::MembershipChanged { change, .. } = event {
            if change == MembershipChange::Disconnected(flaky_id) {
                saw_disconnect = true;
                break;
            }
        }
    }
    assert!(saw_disconnect, "no disconnect notification");
    assert_eq!(stable.membership(G).unwrap().len(), 1);
    stable.close();
    server.shutdown();
}

#[test]
fn reconnecting_client_catches_up_after_link_failure() {
    let net = MemNetwork::new();
    let listener = net.listen("server").unwrap();
    let server =
        CoronaServer::start(Box::new(listener), ServerConfig::stateful(ServerId::new(1))).unwrap();

    let writer = CoronaClient::connect(
        Box::new(net.dial_from("writer", "server").unwrap()),
        "writer",
        None,
    )
    .unwrap();
    writer
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    writer
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();

    let roaming = CoronaClient::connect(
        Box::new(net.dial_from("roaming", "server").unwrap()),
        "roaming",
        None,
    )
    .unwrap();
    let roaming_id = roaming.client_id();
    let (_, mut mirror) = roaming
        .join_mirrored(G, MemberRole::Observer, false)
        .unwrap();

    writer
        .bcast_update(G, O, &b"1;"[..], DeliveryScope::SenderExclusive)
        .unwrap();
    let ev = roaming.next_event_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(mirror.apply_event(&ev), ApplyOutcome::Applied);

    // Link failure while traffic continues.
    net.sever("roaming", "server");
    for i in 2..=6 {
        writer
            .bcast_update(
                G,
                O,
                format!("{i};").into_bytes(),
                DeliveryScope::SenderExclusive,
            )
            .unwrap();
    }
    writer.ping().unwrap();

    // Reconnect with the old identity, rejoin with incremental
    // catch-up from the mirror's last seq, resync the mirror.
    let reconnected = CoronaClient::connect(
        Box::new(net.dial_from("roaming", "server").unwrap()),
        "roaming",
        Some(roaming_id),
    )
    .unwrap();
    assert_eq!(reconnected.client_id(), roaming_id);
    let (_, transfer) = reconnected
        .join(G, MemberRole::Observer, mirror.catch_up_policy(), false)
        .unwrap();
    assert_eq!(transfer.updates.len(), 5, "exactly the missed window");
    mirror.resync(&transfer);
    assert_eq!(
        mirror.state().object(O).unwrap().materialize().as_ref(),
        b"1;2;3;4;5;6;"
    );
    assert_eq!(mirror.last_seq(), SeqNo::new(6));

    writer.close();
    reconnected.close();
    server.shutdown();
}

/// The replicated-service failover path end to end: the coordinator
/// is partitioned away mid-stream, a replica wins the election, the
/// sequence numbers resume without a gap, and the failover shows up
/// in the replication metrics (`repl.elections.*`, `repl.failover_ms`).
#[test]
fn coordinator_partition_mid_stream_failover_is_gap_free_and_metered() {
    // Route the automatic flight-recorder dump somewhere inspectable:
    // resolving a failover must flush the recorded spans to disk.
    let dump_dir = std::env::temp_dir().join(format!("corona-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);
    std::fs::create_dir_all(&dump_dir).unwrap();
    std::env::set_var("CORONA_TRACE_DIR", &dump_dir);
    corona::trace::set_enabled(true);

    let net = MemNetwork::new();
    let peers: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("s{i}-peer")))
        .collect();
    let client_addrs: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("s{i}-client")))
        .collect();
    let mut servers = Vec::new();
    for i in 1..=3u64 {
        let config = ReplicatedConfig {
            servers: peers.clone(),
            client_addrs: client_addrs.clone(),
            heartbeat_ms: 30,
            base_timeout_ms: 150,
            server_config: ServerConfig::stateful(ServerId::new(i)),
        };
        servers.push(
            ReplicatedServer::start(
                Box::new(net.listen(&format!("s{i}-client")).unwrap()),
                Box::new(net.listen(&format!("s{i}-peer")).unwrap()),
                Arc::new(net.dialer(&format!("s{i}-node"))),
                config,
            )
            .unwrap(),
        );
    }

    let connect = |name: &str, srv: u64| {
        let conn = net.dial_from(name, &format!("s{srv}-client")).unwrap();
        let mut c = CoronaClient::connect(Box::new(conn), name, None).unwrap();
        c.set_call_timeout(Duration::from_secs(15));
        c
    };
    let bob = connect("bob", 2);
    let carol = connect("carol", 3);

    bob.create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    bob.join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();
    carol
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();

    let mut seqs = Vec::new();
    let mut pump = |carol: &CoronaClient, want: usize| {
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut got = 0;
        while got < want {
            assert!(
                Instant::now() < deadline,
                "timed out waiting for multicasts; seqs so far {seqs:?}"
            );
            match carol.next_event_timeout(Duration::from_millis(500)) {
                Ok(ServerEvent::Multicast { logged, .. }) => {
                    seqs.push(logged.seq.0);
                    got += 1;
                }
                Ok(_) => {}
                Err(_) => {}
            }
        }
    };

    // A stream of broadcasts under the initial coordinator (s1).
    for i in 0..3 {
        bob.bcast_update(
            G,
            O,
            format!("pre{i};").into_bytes(),
            DeliveryScope::SenderExclusive,
        )
        .unwrap();
    }
    pump(&carol, 3);

    // Partition the coordinator away from everyone else, mid-stream:
    // its existing connections become black holes, so s2 and s3 see
    // heartbeats stop (a network failure, not a clean shutdown).
    net.partition(&[
        &["s1-client", "s1-peer", "s1-node"],
        &[
            "s2-client",
            "s2-peer",
            "s2-node",
            "s3-client",
            "s3-peer",
            "s3-node",
            "bob",
            "carol",
        ],
    ]);

    // The first surviving server in the list (s2) must win.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let agreed = servers[1..].iter().all(|s| {
            s.status()
                .map(|st| st.coordinator == Some(ServerId::new(2)))
                .unwrap_or(false)
        });
        if agreed {
            break;
        }
        assert!(Instant::now() < deadline, "election never settled on s2");
        std::thread::sleep(Duration::from_millis(25));
    }

    // The stream resumes through the new coordinator.
    for i in 0..3 {
        bob.bcast_update(
            G,
            O,
            format!("post{i};").into_bytes(),
            DeliveryScope::SenderExclusive,
        )
        .unwrap();
    }
    pump(&carol, 3);

    // Connectivity restored: the healed network must not disturb the
    // surviving majority (s1's stale-epoch heartbeats are ignored).
    net.heal();
    bob.bcast_update(G, O, &b"healed;"[..], DeliveryScope::SenderExclusive)
        .unwrap();
    pump(&carol, 1);

    // Gap-free sequencing across the failover: every multicast seq is
    // exactly the predecessor plus one.
    assert_eq!(
        seqs,
        (1..=7).collect::<Vec<u64>>(),
        "sequence gap: {seqs:?}"
    );

    // The failover left a trace in the new coordinator's metrics.
    let snap = servers[1].metrics();
    assert!(
        snap.counter("repl.elections.rounds") >= 1,
        "no election round recorded"
    );
    assert!(
        snap.counter("repl.elections.won") >= 1,
        "no election win recorded"
    );
    let failover = snap
        .histogram("repl.failover_ms")
        .expect("failover histogram missing");
    assert!(failover.count >= 1, "failover duration not recorded");
    assert!(
        failover.max < 10_000,
        "implausible failover duration: {} ms",
        failover.max
    );
    // The new coordinator heartbeats the survivors (and s3 hears
    // them). The phases above can finish between two ticks, so poll.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if servers[1].metrics().counter("repl.heartbeats.sent") > 0
            && servers[2].metrics().counter("repl.heartbeats.recv") > 0
        {
            break;
        }
        assert!(Instant::now() < deadline, "no post-failover heartbeats");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Resolving the failover must have dumped the flight recorder:
    // a JSONL spool of the spans leading up to the election, written
    // without being asked — that's the whole point of a black box.
    let deadline = Instant::now() + Duration::from_secs(5);
    let dump = loop {
        let found = std::fs::read_dir(&dump_dir).ok().and_then(|entries| {
            entries.flatten().map(|e| e.path()).find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("corona-flight-failover-"))
                    && p.extension().is_some_and(|e| e == "jsonl")
            })
        });
        if let Some(path) = found {
            break path;
        }
        assert!(Instant::now() < deadline, "no flight-recorder dump found");
        std::thread::sleep(Duration::from_millis(25));
    };
    let body = std::fs::read_to_string(&dump).unwrap();
    assert!(
        body.lines().any(|l| l.contains("\"hop\":\"election\"")),
        "flight dump lacks the election span: {body}"
    );

    bob.close();
    carol.close();
    for s in servers {
        s.shutdown();
    }
    corona::trace::set_enabled(false);
    corona::trace::clear();
    let _ = std::fs::remove_dir_all(&dump_dir);
}

/// Polls a supervised mirror until it has applied `want` sequenced
/// updates (or panics after a generous deadline).
fn wait_mirror(mirror: &SharedMirror, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if mirror.lock().last_seq().0 >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "mirror stuck at seq {}, want {want}",
            mirror.lock().last_seq().0
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The client failover runtime end to end: a supervised client
/// (auto-reconnect with backoff, session resume, mirror gap repair)
/// rides out a server kill with a gap-free, duplicate-free mirror.
///
/// `CORONA_FAULT_SEED` selects the injected fault — the ci.sh fault
/// matrix runs all three:
///
/// 1. kill the coordinator mid-stream (default);
/// 2. kill the follower the client is attached to (no election);
/// 3. sever the client's link first, stream through the outage, then
///    kill the coordinator while the client is catching up.
#[test]
fn supervised_clients_survive_server_kill() {
    let fault: u64 = std::env::var("CORONA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    assert!(
        (1..=3).contains(&fault),
        "unknown CORONA_FAULT_SEED {fault}"
    );

    let net = MemNetwork::new();
    let peers: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("f{i}-peer")))
        .collect();
    let client_addrs: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("f{i}-client")))
        .collect();
    let mut servers = Vec::new();
    for i in 1..=3u64 {
        let config = ReplicatedConfig {
            servers: peers.clone(),
            client_addrs: client_addrs.clone(),
            heartbeat_ms: 30,
            base_timeout_ms: 150,
            server_config: ServerConfig::stateful(ServerId::new(i)),
        };
        servers.push(
            ReplicatedServer::start(
                Box::new(net.listen(&format!("f{i}-client")).unwrap()),
                Box::new(net.listen(&format!("f{i}-peer")).unwrap()),
                Arc::new(net.dialer(&format!("f{i}-node"))),
                config,
            )
            .unwrap(),
        );
    }

    // A plain writer on s2, which no fault touches.
    let writer = {
        let conn = net.dial_from("w", "f2-client").unwrap();
        let mut c = CoronaClient::connect(Box::new(conn), "w", None).unwrap();
        c.set_call_timeout(Duration::from_secs(15));
        c
    };
    writer
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    writer
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();

    // The supervised client, attached to the server the fault targets.
    let attach = if fault == 2 { 3 } else { 1 };
    let registry = Registry::new();
    let roam = CoronaClient::connect_failover(
        Arc::new(net.dialer("roam-node")),
        vec![format!("f{attach}-client")],
        "roam",
        FailoverConfig {
            registry: Some(registry.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    let (_members, mirror) = roam
        .join_supervised(G, MemberRole::Observer, false)
        .unwrap();

    // Broadcast forwards are fire-and-forget: one handed to a
    // coordinator that dies before sequencing it is lost for good.
    // `SenderInclusive` scope echoes every sequenced update back to
    // the writer, so each send waits for its echo and re-sends if the
    // fault swallowed it — duplicate-safe, because a forward lost at
    // a dead coordinator can never be sequenced later.
    let send = |i: u64| {
        let payload = format!("{i};").into_bytes();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            writer
                .bcast_update(G, O, payload.clone(), DeliveryScope::SenderInclusive)
                .unwrap();
            let confirm = Instant::now() + Duration::from_secs(5);
            while Instant::now() < confirm {
                if let Ok(ServerEvent::Multicast { logged, .. }) =
                    writer.next_event_timeout(Duration::from_millis(200))
                {
                    if logged.update.payload.as_ref() == payload.as_slice() {
                        return;
                    }
                }
            }
            assert!(
                Instant::now() < deadline,
                "broadcast {i} was never sequenced"
            );
        }
    };
    let kill = |servers: &mut Vec<ReplicatedServer>, id: u64| {
        let pos = servers
            .iter()
            .position(|s| s.server_id().raw() == id)
            .unwrap();
        let s = servers.remove(pos);
        s.shutdown();
        net.crash_node(&format!("f{id}-client"));
        net.crash_node(&format!("f{id}-peer"));
        net.crash_node(&format!("f{id}-node"));
    };

    // Mid-stream: the mirror is live when the fault hits.
    for i in 1..=3 {
        send(i);
    }
    wait_mirror(&mirror, 3);

    let mut next = 4;
    match fault {
        1 => kill(&mut servers, 1),
        2 => kill(&mut servers, 3),
        3 => {
            // Lose the client's link only, stream a window it must
            // later repair, then kill the coordinator while the
            // client is mid-reconnect.
            net.partition(&[&["roam-node"], &["f1-client"]]);
            net.sever("roam-node", "f1-client");
            for i in 4..=6 {
                send(i);
            }
            next = 7;
            kill(&mut servers, 1);
            net.heal();
        }
        _ => unreachable!(),
    }

    // Traffic during the client's outage: the resume-time
    // UpdatesSince repair must cover it.
    for i in next..next + 3 {
        send(i);
    }
    next += 3;

    // The driver must land on a surviving server.
    let deadline = Instant::now() + Duration::from_secs(20);
    while registry.snapshot().counter("client.reconnects") < 1 {
        assert!(Instant::now() < deadline, "client never reconnected");
        std::thread::sleep(Duration::from_millis(20));
    }

    // And live traffic flows again.
    for i in next..next + 3 {
        send(i);
    }
    let total = next + 2;
    wait_mirror(&mirror, total);

    // Gap-free and duplicate-free across the failover: the mirror's
    // materialised object is exactly the concatenation in order (a
    // duplicate would double-append; a gap would drop a token).
    let body = mirror.lock().state().object(O).unwrap().materialize();
    let want: String = (1..=total).map(|i| format!("{i};")).collect();
    assert_eq!(
        body.as_ref(),
        want.as_bytes(),
        "mirror diverged across failover (fault {fault})"
    );
    assert_eq!(mirror.lock().last_seq().0, total);

    // The driver's work is metered.
    let snap = registry.snapshot();
    assert!(
        snap.counter("client.reconnects") >= 1,
        "no reconnect counted"
    );
    let backoff = snap
        .histogram("client.backoff_ms")
        .expect("backoff histogram missing");
    assert!(backoff.count >= 1, "no backoff round recorded");

    // The client learned the post-fault roster: after a coordinator
    // kill the roster must name the new coordinator (s2).
    if fault == 1 {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if roam.roster().map(|r| r.coordinator) == Some(ServerId::new(2)) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "roster never named the new coordinator: {:?}",
                roam.roster()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    } else {
        assert!(roam.roster().is_some(), "no roster advertised");
    }

    writer.close();
    roam.close();
    for s in servers {
        s.shutdown();
    }
}

/// Builds a server on its own storage dir, runs `edits` against it,
/// shuts it down, and returns the recovered group log — one partition
/// side's history.
fn run_partition_side(dir: &std::path::Path, create: bool, edits: &[&str]) -> GroupLog {
    let net = MemNetwork::new();
    let listener = net.listen("server").unwrap();
    let server = CoronaServer::start(
        Box::new(listener),
        ServerConfig::stateful(ServerId::new(1))
            .with_storage(dir)
            .with_sync_policy(SyncPolicy::EveryRecord),
    )
    .unwrap();
    let c =
        CoronaClient::connect(Box::new(net.dial_from("c", "server").unwrap()), "c", None).unwrap();
    if create {
        c.create_group(G, Persistence::Persistent, SharedState::new())
            .unwrap();
    }
    c.join(
        G,
        MemberRole::Principal,
        StateTransferPolicy::FullState,
        false,
    )
    .unwrap();
    for e in edits {
        c.bcast_update(G, O, e.as_bytes().to_vec(), DeliveryScope::SenderExclusive)
            .unwrap();
    }
    c.ping().unwrap();
    c.close();
    server.shutdown();

    let store = StableStore::open(dir, SyncPolicy::OsDefault).unwrap();
    let (recovered, _) = store.recover_group(G).unwrap().unwrap();
    recovered.log
}

#[test]
fn partition_divergence_and_merge_end_to_end() {
    // Two replicas share a prefix, partition, evolve independently
    // (each side's server keeps sequencing its own clients), then the
    // histories are compared and merged per §4.2.
    let base = std::env::temp_dir().join(format!("corona-partition-{}", std::process::id()));
    let dir_a = base.join("a");
    let dir_b = base.join("b");
    let _ = std::fs::remove_dir_all(&base);

    // Shared prefix on side A's storage, then duplicate it to B —
    // the state both sides held when the network split.
    run_partition_side(&dir_a, true, &["shared1;", "shared2;"]);
    copy_dir(&dir_a, &dir_b);

    // The partition: each side evolves separately.
    let log_a = run_partition_side(&dir_a, false, &["a-only;"]);
    let log_b = run_partition_side(&dir_b, false, &["b1;", "b2;"]);

    // Connectivity restored: identify the last globally consistent
    // state from checkpoints and sequence numbers.
    let divergence = find_divergence(&log_a, &log_b);
    assert_eq!(divergence.common_seq, SeqNo::new(2));
    assert!(divergence.is_conflicting());

    let text = |log: &GroupLog| {
        String::from_utf8_lossy(&log.current_state().object(O).unwrap().materialize()).into_owned()
    };

    // Choice 1: roll back to the consistent state.
    let rolled = merge(&divergence, MergeResolution::RollBack);
    assert_eq!(text(&rolled.primary), "shared1;shared2;");

    // Choice 2: select one of the updated states.
    let adopted = merge(&divergence, MergeResolution::Adopt(Side::B));
    assert_eq!(text(&adopted.primary), "shared1;shared2;b1;b2;");

    // Choice 3: evolve as two different groups.
    let forked = merge(
        &divergence,
        MergeResolution::Fork {
            keep: Side::A,
            fork_group: GroupId::new(2),
        },
    );
    assert_eq!(text(&forked.primary), "shared1;shared2;a-only;");
    let fork = forked.fork.unwrap();
    assert_eq!(fork.group(), GroupId::new(2));
    assert_eq!(text(&fork), "shared1;shared2;b1;b2;");

    std::fs::remove_dir_all(&base).ok();
}

fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let target = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &target);
        } else {
            std::fs::copy(entry.path(), target).unwrap();
        }
    }
}
