//! Full-stack tests of the batched fan-out path: encode-once frame
//! sharing across a wide group, and reaping of dead or hopelessly
//! backlogged connections discovered at send time.

use corona::prelude::*;
use std::time::Duration;

const G: GroupId = GroupId(1);
const DOC: ObjectId = ObjectId(1);

fn mem_server(net: &MemNetwork, config: ServerConfig) -> CoronaServer {
    let listener = net.listen("server").unwrap();
    CoronaServer::start(Box::new(listener), config).unwrap()
}

fn mem_connect(net: &MemNetwork, name: &str) -> CoronaClient {
    let conn = net.dial_from(name, "server").unwrap();
    CoronaClient::connect(Box::new(conn), name, None).unwrap()
}

/// A broadcast to a wide group serialises its payload exactly once;
/// every recipient's frame is a refcounted clone of the same bytes.
#[test]
fn broadcast_to_fifty_subscribers_encodes_once() {
    const RECEIVERS: usize = 50;
    let net = MemNetwork::new();
    let server = mem_server(&net, ServerConfig::stateful(ServerId::new(1)));

    let sender = mem_connect(&net, "sender");
    sender
        .create_group(G, Persistence::Transient, SharedState::new())
        .unwrap();
    sender
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();
    let receivers: Vec<CoronaClient> = (0..RECEIVERS)
        .map(|i| {
            let c = mem_connect(&net, &format!("r{i}"));
            c.join(G, MemberRole::Principal, StateTransferPolicy::None, false)
                .unwrap();
            c
        })
        .collect();

    // Joins are synchronous, but a worker increments its enqueue
    // counter just *after* the client can observe the frame — wait for
    // the counters to quiesce so the metric window below contains only
    // the broadcast traffic.
    let registry = server.metrics_registry();
    let before = loop {
        let a = registry.snapshot().counter("server.fanout.enqueues");
        std::thread::sleep(Duration::from_millis(50));
        let b = registry.snapshot();
        if b.counter("server.fanout.enqueues") == a {
            break b;
        }
    };

    let payload = vec![0xabu8; 512];
    sender
        .bcast_update(G, DOC, payload.clone(), DeliveryScope::SenderInclusive)
        .unwrap();

    // Every subscriber (sender included) receives the one multicast.
    for client in receivers.iter().chain(std::iter::once(&sender)) {
        match client.next_event_timeout(Duration::from_secs(10)).unwrap() {
            ServerEvent::Multicast { logged, .. } => {
                assert_eq!(logged.update.payload.as_ref(), payload.as_slice());
            }
            other => panic!("expected multicast, got {other:?}"),
        }
    }

    // All recipients saw the frame; give the last worker its beat to
    // bump the counter, then require exact deltas.
    let want = (RECEIVERS + 1) as u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let after = loop {
        let after = registry.snapshot();
        let enqueues =
            after.counter("server.fanout.enqueues") - before.counter("server.fanout.enqueues");
        if enqueues >= want {
            assert_eq!(enqueues, want, "only the broadcast may enqueue frames");
            break after;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "enqueues stuck at {enqueues}/{want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    let encodes = after.counter("server.fanout.encodes") - before.counter("server.fanout.encodes");
    let saved =
        after.counter("server.fanout.bytes_saved") - before.counter("server.fanout.bytes_saved");
    assert_eq!(
        encodes, 1,
        "one broadcast to {want} subscribers must encode exactly once"
    );
    // The shared frame saves (recipients - 1) re-encodes, each at
    // least as large as the payload it carries.
    assert!(
        saved >= (RECEIVERS as u64) * payload.len() as u64,
        "bytes_saved {saved}"
    );

    for c in &receivers {
        c.close();
    }
    sender.close();
    server.shutdown();
}

/// A subscriber whose transmit queue is dead or full beyond hope is
/// disconnected and reaped from the session maps: later broadcasts
/// skip it, membership drops it, and the connection table shrinks.
///
/// The laggard speaks the wire protocol over a raw connection — the
/// facade client's reader thread would drain the server-side queue —
/// and simply stops reading after its join completes.
#[test]
fn dead_subscriber_is_reaped_and_later_broadcasts_skip_it() {
    use corona::types::wire::decode_traced;
    use corona::types::{ClientRequest, Encode, PROTOCOL_VERSION};
    use std::time::Instant;

    let net = MemNetwork::new();
    // Capacity 1: a subscriber that never drains its queue overflows
    // on the second frame.
    let server = mem_server(
        &net,
        ServerConfig::stateful(ServerId::new(1)).with_send_queue_capacity(1),
    );

    let sender = mem_connect(&net, "sender");
    let live = mem_connect(&net, "live");
    sender
        .create_group(G, Persistence::Transient, SharedState::new())
        .unwrap();
    for c in [&sender, &live] {
        c.join(G, MemberRole::Principal, StateTransferPolicy::None, false)
            .unwrap();
    }

    let raw = net.dial_from("dead", "server").unwrap();
    raw.send(
        ClientRequest::Hello {
            version: PROTOCOL_VERSION,
            display_name: "dead".into(),
            resume: None,
        }
        .encode_to_bytes(),
    )
    .unwrap();
    let dead_id = match decode_traced::<ServerEvent>(&raw.recv().unwrap())
        .unwrap()
        .0
    {
        ServerEvent::Welcome { client, .. } => client,
        other => panic!("expected welcome, got {other:?}"),
    };
    raw.send(
        ClientRequest::Join {
            group: G,
            role: MemberRole::Principal,
            policy: StateTransferPolicy::None,
            notify_membership: false,
        }
        .encode_to_bytes(),
    )
    .unwrap();
    match decode_traced::<ServerEvent>(&raw.recv().unwrap())
        .unwrap()
        .0
    {
        ServerEvent::Joined { .. } => {}
        other => panic!("expected joined, got {other:?}"),
    }
    // From here on the laggard never reads another frame.
    assert_eq!(server.stats().unwrap().open_conns, 3);

    // First broadcast: fills the laggard's queue. Second broadcast:
    // its transmit queue is full; a multicast is Data class — a gap
    // would desync its mirror — so the server disconnects it instead
    // of shedding. The live subscriber reads each frame before the
    // next send, so its capacity-1 queue is empty at every enqueue:
    // only the laggard can overflow.
    for expect in [&b"one"[..], &b"two"[..]] {
        sender
            .bcast_update(G, DOC, expect, DeliveryScope::SenderExclusive)
            .unwrap();
        match live.next_event_timeout(Duration::from_secs(10)).unwrap() {
            ServerEvent::Multicast { logged, .. } => {
                assert_eq!(logged.update.payload.as_ref(), expect);
            }
            other => panic!("expected multicast, got {other:?}"),
        }
    }

    // The reap happens on the fan-out worker's report; poll the
    // dispatcher until it lands.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let stats = server.stats().unwrap();
        if stats.dead_conns >= 1 {
            break stats;
        }
        assert!(Instant::now() < deadline, "reap never happened: {stats:?}");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(stats.dead_conns, 1, "send failure must be counted");
    assert_eq!(stats.open_conns, 2, "dead connection must leave the map");
    let members = sender.membership(G).unwrap();
    assert!(
        members.iter().all(|m| m.client != dead_id),
        "reap must emit the session leave: {members:?}"
    );

    // Later broadcasts are delivered to the remaining subscriber and
    // enqueue exactly one frame — nothing is addressed to the corpse.
    // Let the worker counters quiesce first; the increment for a frame
    // trails the client's read by a beat.
    let registry = server.metrics_registry();
    let before = loop {
        let a = registry.snapshot().counter("server.fanout.enqueues");
        std::thread::sleep(Duration::from_millis(50));
        let b = registry.snapshot();
        if b.counter("server.fanout.enqueues") == a {
            break b;
        }
    };
    sender
        .bcast_update(G, DOC, &b"three"[..], DeliveryScope::SenderExclusive)
        .unwrap();
    match live.next_event_timeout(Duration::from_secs(10)).unwrap() {
        ServerEvent::Multicast { logged, .. } => {
            assert_eq!(logged.update.payload.as_ref(), b"three");
        }
        other => panic!("expected multicast, got {other:?}"),
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let after = registry.snapshot();
        let enqueues =
            after.counter("server.fanout.enqueues") - before.counter("server.fanout.enqueues");
        if enqueues >= 1 {
            assert_eq!(
                enqueues, 1,
                "the reaped subscriber must no longer be fanned out to"
            );
            break;
        }
        assert!(Instant::now() < deadline, "enqueue counter never moved");
        std::thread::sleep(Duration::from_millis(10));
    }

    sender.close();
    live.close();
    server.shutdown();
}
