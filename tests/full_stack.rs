//! Cross-crate integration tests through the `corona` facade: a full
//! collaborative session exercising state transfer policies, mirrors,
//! locks, awareness, log reduction and persistence together.

use corona::prelude::*;
use std::time::Duration;

const G: GroupId = GroupId(1);
const DOC: ObjectId = ObjectId(1);

fn tcp_server(config: ServerConfig) -> (String, CoronaServer) {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();
    (
        addr,
        CoronaServer::start(Box::new(acceptor), config).unwrap(),
    )
}

fn connect(addr: &str, name: &str) -> CoronaClient {
    CoronaClient::connect(TcpDialer.dial(addr).unwrap(), name, None).unwrap()
}

#[test]
fn collaborative_editing_session() {
    let (addr, server) = tcp_server(ServerConfig::stateful(ServerId::new(1)));
    let ann = connect(&addr, "ann");
    let bob = connect(&addr, "bob");

    ann.create_group(
        G,
        Persistence::Persistent,
        SharedState::from_objects([(DOC, &b"# Title\n"[..])]),
    )
    .unwrap();
    let (_, mut ann_mirror) = ann.join_mirrored(G, MemberRole::Principal, true).unwrap();
    let (_, mut bob_mirror) = bob.join_mirrored(G, MemberRole::Principal, true).unwrap();

    // The creation-time initial state arrived via the join transfer.
    assert_eq!(
        bob_mirror
            .state()
            .object(DOC)
            .unwrap()
            .materialize()
            .as_ref(),
        b"# Title\n"
    );

    // Interleaved edits under the lock service.
    assert_eq!(ann.acquire_lock(G, DOC, true).unwrap(), LockResult::Granted);
    ann.bcast_update(
        G,
        DOC,
        &b"ann's paragraph\n"[..],
        DeliveryScope::SenderInclusive,
    )
    .unwrap();
    ann.release_lock(G, DOC).unwrap();

    assert_eq!(bob.acquire_lock(G, DOC, true).unwrap(), LockResult::Granted);
    bob.bcast_update(
        G,
        DOC,
        &b"bob's paragraph\n"[..],
        DeliveryScope::SenderInclusive,
    )
    .unwrap();
    bob.release_lock(G, DOC).unwrap();

    // Both mirrors converge via the sequenced stream.
    for mirror_and_client in [(&mut ann_mirror, &ann), (&mut bob_mirror, &bob)] {
        let (mirror, client) = mirror_and_client;
        let mut applied = 0;
        while applied < 2 {
            let event = client.next_event_timeout(Duration::from_secs(10)).unwrap();
            if mirror.apply_event(&event) == ApplyOutcome::Applied {
                applied += 1;
            }
        }
    }
    let expected = b"# Title\nann's paragraph\nbob's paragraph\n";
    assert_eq!(
        ann_mirror
            .state()
            .object(DOC)
            .unwrap()
            .materialize()
            .as_ref(),
        expected.as_slice()
    );
    assert_eq!(
        bob_mirror
            .state()
            .object(DOC)
            .unwrap()
            .materialize()
            .as_ref(),
        expected.as_slice()
    );

    ann.close();
    bob.close();
    server.shutdown();
}

#[test]
fn log_reduction_is_transparent_to_late_joiners() {
    let (addr, server) = tcp_server(
        ServerConfig::stateful(ServerId::new(1))
            .with_reduction(ReductionPolicy::MaxUpdates { max: 10, keep: 4 }),
    );
    let writer = connect(&addr, "writer");
    writer
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    writer
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();
    for i in 0..40 {
        writer
            .bcast_update(
                G,
                DOC,
                format!("{i};").into_bytes(),
                DeliveryScope::SenderExclusive,
            )
            .unwrap();
    }
    writer.ping().unwrap();

    // Despite multiple automatic reductions, a full-state join sees
    // everything.
    let reader = connect(&addr, "reader");
    let (_, transfer) = reader
        .join(
            G,
            MemberRole::Principal,
            StateTransferPolicy::FullState,
            false,
        )
        .unwrap();
    let expected: String = (0..40).map(|i| format!("{i};")).collect();
    assert_eq!(
        transfer
            .reconstruct()
            .object(DOC)
            .unwrap()
            .materialize()
            .as_ref(),
        expected.as_bytes()
    );

    // An UpdatesSince older than the checkpoint degrades gracefully to
    // a full transfer.
    let old = reader
        .state(G, StateTransferPolicy::UpdatesSince(SeqNo::new(1)))
        .unwrap();
    assert!(
        !old.objects.is_empty(),
        "reduced-away window must fall back to full state"
    );
    assert_eq!(
        old.reconstruct()
            .object(DOC)
            .unwrap()
            .materialize()
            .as_ref(),
        expected.as_bytes()
    );

    let stats = server.stats().unwrap();
    assert!(stats.reductions >= 1, "policy should have fired");
    writer.close();
    reader.close();
    server.shutdown();
}

#[test]
fn explicit_client_reduction_via_facade() {
    let (addr, server) = tcp_server(ServerConfig::stateful(ServerId::new(1)));
    let c = connect(&addr, "c");
    c.create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    c.join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();
    for i in 0..10 {
        c.bcast_update(
            G,
            DOC,
            format!("{i}").into_bytes(),
            DeliveryScope::SenderExclusive,
        )
        .unwrap();
    }
    c.ping().unwrap();
    let through = c.reduce_log(G, Some(SeqNo::new(7))).unwrap();
    assert_eq!(through, SeqNo::new(7));
    // Asking beyond the log is a typed error.
    let err = c.reduce_log(G, Some(SeqNo::new(99))).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadReductionPoint));
    c.close();
    server.shutdown();
}

#[test]
fn observers_receive_but_cannot_write() {
    let (addr, server) = tcp_server(ServerConfig::stateful(ServerId::new(1)));
    let writer = connect(&addr, "writer");
    let watcher = connect(&addr, "watcher");
    writer
        .create_group(G, Persistence::Transient, SharedState::new())
        .unwrap();
    writer
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();
    watcher
        .join(G, MemberRole::Observer, StateTransferPolicy::None, false)
        .unwrap();

    // Observer broadcast is rejected (error arrives on the event
    // stream since broadcasts are fire-and-forget).
    watcher
        .bcast_update(G, DOC, &b"nope"[..], DeliveryScope::SenderInclusive)
        .unwrap();
    match watcher.next_event_timeout(Duration::from_secs(5)).unwrap() {
        ServerEvent::Error { code, .. } => {
            assert_eq!(ErrorCode::from_wire(code), ErrorCode::PolicyDenied)
        }
        other => panic!("expected error event, got {other:?}"),
    }

    // But it still receives the principal's traffic.
    writer
        .bcast_update(G, DOC, &b"data"[..], DeliveryScope::SenderExclusive)
        .unwrap();
    match watcher.next_event_timeout(Duration::from_secs(5)).unwrap() {
        ServerEvent::Multicast { logged, .. } => {
            assert_eq!(logged.update.payload.as_ref(), b"data")
        }
        other => panic!("expected multicast, got {other:?}"),
    }
    writer.close();
    watcher.close();
    server.shutdown();
}

#[test]
fn acl_session_policy_through_the_stack() {
    use corona::membership::{AclPolicy, Capability};
    use std::sync::Arc;

    // Client ids are assigned in connection order starting at 1.
    let acl = AclPolicy::default()
        .allow_create(ClientId::new(1))
        .grant(ClientId::new(1), G, Capability::Manage)
        .grant(ClientId::new(2), G, Capability::Observe);
    let (addr, server) =
        tcp_server(ServerConfig::stateful(ServerId::new(1)).with_session_policy(Arc::new(acl)));
    let admin = connect(&addr, "admin");
    let guest = connect(&addr, "guest");
    assert_eq!(admin.client_id(), ClientId::new(1));
    assert_eq!(guest.client_id(), ClientId::new(2));

    admin
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    // Guest may not create, may not join as principal, may observe.
    let err = guest
        .create_group(GroupId::new(2), Persistence::Transient, SharedState::new())
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::PolicyDenied));
    let err = guest
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::PolicyDenied));
    guest
        .join(G, MemberRole::Observer, StateTransferPolicy::None, false)
        .unwrap();

    admin.close();
    guest.close();
    server.shutdown();
}

#[test]
fn stateless_baseline_through_the_stack() {
    let (addr, server) = tcp_server(ServerConfig::stateless(ServerId::new(1)));
    let a = connect(&addr, "a");
    a.create_group(G, Persistence::Transient, SharedState::new())
        .unwrap();
    a.join(
        G,
        MemberRole::Principal,
        StateTransferPolicy::FullState,
        false,
    )
    .unwrap();
    a.bcast_update(G, DOC, &b"x"[..], DeliveryScope::SenderInclusive)
        .unwrap();
    // Sequencing works...
    match a.next_event_timeout(Duration::from_secs(5)).unwrap() {
        ServerEvent::Multicast { logged, .. } => assert_eq!(logged.seq, SeqNo::new(1)),
        other => panic!("{other:?}"),
    }
    // ...but a late joiner gets no state.
    let b = connect(&addr, "b");
    let (_, transfer) = b
        .join(
            G,
            MemberRole::Principal,
            StateTransferPolicy::FullState,
            false,
        )
        .unwrap();
    assert!(transfer.objects.is_empty());
    assert_eq!(transfer.through, SeqNo::new(1));
    a.close();
    b.close();
    server.shutdown();
}
