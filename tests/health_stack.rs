//! Health-plane integration tests: the `Health` admin command over
//! the wire, the stats satellite fields, and the acceptance scenario —
//! a coordinator killed mid-broadcast trips the sequencing-stall
//! watchdog (structured ops event + automatic flight-recorder dump)
//! and the post-failover snapshot shows the gap closed.

use corona::health::WatchdogConfig;
use corona::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const G: GroupId = GroupId(1);
const O: ObjectId = ObjectId(1);

/// Pulls the integer value of `"key":N` out of a flat JSON rendering.
fn json_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let digits: String = json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[test]
fn health_snapshot_over_the_wire_and_stats_satellites() {
    let net = MemNetwork::new();
    let listener = net.listen("server").unwrap();
    let server =
        CoronaServer::start(Box::new(listener), ServerConfig::stateful(ServerId::new(1))).unwrap();

    let alice = CoronaClient::connect(
        Box::new(net.dial_from("alice", "server").unwrap()),
        "alice",
        None,
    )
    .unwrap();
    let bob = CoronaClient::connect(
        Box::new(net.dial_from("bob", "server").unwrap()),
        "bob",
        None,
    )
    .unwrap();
    alice
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    alice
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();
    bob.join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();
    for i in 0..5u8 {
        alice
            .bcast_update(G, O, vec![i], DeliveryScope::SenderExclusive)
            .unwrap();
    }
    // Drain bob so delivery counters advance deterministically.
    for _ in 0..5 {
        bob.next_event_timeout(Duration::from_secs(5)).unwrap();
    }

    // The snapshot arrives over the wire, versioned.
    let (schema, json) = alice.health().unwrap();
    assert_eq!(schema, corona::health::SCHEMA_VERSION);
    assert!(json.starts_with("{\"schema\":1,"), "snapshot: {json}");
    assert_eq!(json_u64(&json, "submitted"), Some(5), "snapshot: {json}");
    assert_eq!(json_u64(&json, "sequenced"), Some(5));
    assert_eq!(json_u64(&json, "members"), Some(2));
    assert!(json.contains("\"stalled\":false"));
    assert!(json.contains("\"fanout\":{\"queue_hwm\":"));
    assert!(json.contains("\"slo\":{\"budget_us\":"));
    // Unauthenticated admin probes work too (no Hello required), and
    // the snapshot sequence number is monotonic across requests.
    let (_, json2) = bob.health().unwrap();
    assert!(
        json_u64(&json2, "seq") > json_u64(&json, "seq"),
        "snapshot seq must advance: {json2}"
    );

    // Satellite: the Stats admin JSON carries uptime and a monotonic
    // snapshot sequence.
    let stats = server.stats().unwrap();
    let rendered = stats.render_json();
    assert!(json_u64(&rendered, "uptime_ms").is_some(), "{rendered}");
    let s1 = stats.snapshot_seq;
    let s2 = server.stats().unwrap().snapshot_seq;
    assert!(s2 > s1, "stats snapshot_seq must be monotonic");

    // Satellite: the fan-out queue high-watermark gauge is registered
    // and the wire snapshot mirrors it.
    let snap = server.metrics().unwrap();
    assert!(
        snap.gauge("server.fanout.queue_hwm") >= 0,
        "queue_hwm gauge missing"
    );

    alice.close();
    bob.close();
    server.shutdown();
}

/// The acceptance scenario: kill the coordinator mid-broadcast. The
/// surviving replica's sequencing-stall watchdog must trip (ops event
/// naming the group, with an automatic flight-recorder dump), and once
/// the election resolves and traffic resumes, the stall must recover
/// and the snapshot must show the gap closed.
#[test]
fn coordinator_kill_mid_broadcast_trips_stall_then_heals() {
    let dump_dir = std::env::temp_dir().join(format!("corona-health-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dump_dir);
    std::fs::create_dir_all(&dump_dir).unwrap();
    std::env::set_var("CORONA_TRACE_DIR", &dump_dir);
    corona::trace::set_enabled(true);

    let net = MemNetwork::new();
    let peers: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("h{i}-peer")))
        .collect();
    let client_addrs: Vec<(ServerId, String)> = (1..=3)
        .map(|i| (ServerId::new(i), format!("h{i}-client")))
        .collect();
    let watchdog = WatchdogConfig {
        stall_after_ms: 150,
        ..WatchdogConfig::default()
    };
    let mut servers = Vec::new();
    for i in 1..=3u64 {
        let config = ReplicatedConfig {
            servers: peers.clone(),
            client_addrs: client_addrs.clone(),
            heartbeat_ms: 30,
            // The election must resolve decisively *slower* than the
            // 150 ms stall threshold: with a fast timeout the surviving
            // replica can win and resume sequencing before the watchdog
            // ever sees a 150 ms quiet window, and the trip is a race.
            base_timeout_ms: 450,
            server_config: ServerConfig::stateful(ServerId::new(i)).with_watchdog(watchdog),
        };
        servers.push(
            ReplicatedServer::start(
                Box::new(net.listen(&format!("h{i}-client")).unwrap()),
                Box::new(net.listen(&format!("h{i}-peer")).unwrap()),
                Arc::new(net.dialer(&format!("h{i}-node"))),
                config,
            )
            .unwrap(),
        );
    }

    // The writer sits on s2 — the replica that survives the fault and
    // whose health plane we watch.
    let writer = {
        let conn = net.dial_from("w", "h2-client").unwrap();
        let mut c = CoronaClient::connect(Box::new(conn), "w", None).unwrap();
        c.set_call_timeout(Duration::from_secs(15));
        c
    };
    writer
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    writer
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();

    // Echo-confirmed send: retries until the update is sequenced (a
    // forward handed to a dead coordinator is lost for good).
    let send_confirmed = |payload: &str| {
        let payload = payload.as_bytes().to_vec();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            writer
                .bcast_update(G, O, payload.clone(), DeliveryScope::SenderInclusive)
                .unwrap();
            let confirm = Instant::now() + Duration::from_secs(5);
            while Instant::now() < confirm {
                if let Ok(ServerEvent::Multicast { logged, .. }) =
                    writer.next_event_timeout(Duration::from_millis(200))
                {
                    if logged.update.payload.as_ref() == payload.as_slice() {
                        return;
                    }
                }
            }
            assert!(Instant::now() < deadline, "broadcast was never sequenced");
        }
    };

    // Healthy traffic under the initial coordinator (s1).
    for i in 0..3 {
        send_confirmed(&format!("pre{i};"));
    }

    // Kill the coordinator mid-broadcast: a hard crash, not a goodbye.
    let s1 = servers.remove(0);
    s1.shutdown();
    net.crash_node("h1-client");
    net.crash_node("h1-peer");
    net.crash_node("h1-node");

    // Keep submitting while nothing can be sequenced: this is exactly
    // the condition the stall watchdog guards. The broadcasts are
    // fire-and-forget forwards into the void until the election
    // resolves.
    let health = servers[0].health_registry(); // s2
    let deadline = Instant::now() + Duration::from_secs(15);
    let stall = loop {
        writer
            .bcast_update(G, O, &b"mid;"[..], DeliveryScope::SenderInclusive)
            .unwrap();
        if let Some(e) = health
            .ops_events()
            .into_iter()
            .find(|e| e.kind == "sequencing_stall")
        {
            break e;
        }
        assert!(
            Instant::now() < deadline,
            "sequencing stall never tripped; ops: {:?}",
            health.ops_events()
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    // The ops event names the group and carries the automatic flight
    // dump.
    assert_eq!(stall.group, Some(G), "stall event names the group");
    let dump = stall
        .flight_dump
        .as_ref()
        .expect("stall event carries a flight-recorder dump path");
    let body = std::fs::read_to_string(dump).expect("flight dump readable");
    assert!(!body.is_empty(), "flight dump is empty");

    // Traffic resumes once s2 wins the election; the echo-confirmed
    // send retries across the failover.
    send_confirmed("post;");

    // The watchdog must emit the recovery event...
    let deadline = Instant::now() + Duration::from_secs(10);
    while !health
        .ops_events()
        .iter()
        .any(|e| e.kind == "sequencing_stall_recovered")
    {
        assert!(
            Instant::now() < deadline,
            "stall never recovered; ops: {:?}",
            health.ops_events()
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // ...and the post-failover snapshot shows the gap closed: the
    // group is no longer stalled and everything sequenced has been
    // delivered (the writer is the only local member, and its echo is
    // confirmed).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let json = servers[0].health_json().unwrap();
        let lag = json_u64(&json, "lag");
        if json.contains("\"stalled\":false") && lag == Some(0) {
            assert!(
                json_u64(&json, "elections") >= Some(1),
                "election not counted: {json}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "gap never closed after failover: {json}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    writer.close();
    for s in servers {
        s.shutdown();
    }
    corona::trace::set_enabled(false);
    corona::trace::clear();
    let _ = std::fs::remove_dir_all(&dump_dir);
}
