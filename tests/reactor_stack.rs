//! Full-stack tests of the sharded reactor transport: the regular
//! client library running end-to-end over real TCP with the reactor
//! backend, backend selectability via [`ServerConfig::with_transport`],
//! and the C5k smoke test — five thousand concurrent members on one
//! server whose thread count stays O(shards + fan-out workers)
//! instead of O(2 × clients).

use corona::prelude::*;
use corona_transport::Dialer;
use std::time::Duration;

const G: GroupId = GroupId(1);
const DOC: ObjectId = ObjectId(1);

fn tcp_connect(addr: &str, name: &str) -> CoronaClient {
    let conn = TcpDialer
        .dial_timeout(addr, Duration::from_secs(5))
        .unwrap();
    CoronaClient::connect(conn, name, None).unwrap()
}

fn stack_roundtrip(server: &CoronaServer) {
    let addr = server.local_addr();
    let sender = tcp_connect(&addr, "sender");
    sender
        .create_group(G, Persistence::Transient, SharedState::new())
        .unwrap();
    sender
        .join(G, MemberRole::Principal, StateTransferPolicy::None, false)
        .unwrap();

    let receivers: Vec<CoronaClient> = (0..8)
        .map(|i| {
            let c = tcp_connect(&addr, &format!("rx{i}"));
            c.join(G, MemberRole::Principal, StateTransferPolicy::None, false)
                .unwrap();
            c
        })
        .collect();

    let payload = vec![0x5au8; 2048];
    sender
        .bcast_update(G, DOC, payload.clone(), DeliveryScope::SenderInclusive)
        .unwrap();

    for client in receivers.iter().chain(std::iter::once(&sender)) {
        match client.next_event_timeout(Duration::from_secs(10)).unwrap() {
            ServerEvent::Multicast { logged, .. } => {
                assert_eq!(logged.update.payload.as_ref(), payload.as_slice());
            }
            other => panic!("expected multicast, got {other:?}"),
        }
    }

    // A second round in the other direction exercises the reactor's
    // read path on a different shard than the first sender.
    let reply = vec![0xc3u8; 64];
    receivers[0]
        .bcast_update(G, DOC, reply.clone(), DeliveryScope::SenderExclusive)
        .unwrap();
    for client in receivers[1..].iter().chain(std::iter::once(&sender)) {
        match client.next_event_timeout(Duration::from_secs(10)).unwrap() {
            ServerEvent::Multicast { logged, .. } => {
                assert_eq!(logged.update.payload.as_ref(), reply.as_slice());
            }
            other => panic!("expected multicast, got {other:?}"),
        }
    }

    for c in receivers {
        c.close();
    }
    sender.close();
}

/// The default configuration serves real TCP clients through the
/// sharded reactor, end to end: joins, sequenced multicast in both
/// scopes, clean close.
#[test]
fn full_stack_over_reactor_transport() {
    let config = ServerConfig::stateful(ServerId::new(1));
    assert_eq!(config.transport, TransportKind::Reactor);
    let server = CoronaServer::bind("127.0.0.1:0", config).unwrap();
    stack_roundtrip(&server);
    server.shutdown();
}

/// The classic thread-per-connection transport stays selectable and
/// serves the same stack unchanged.
#[test]
fn full_stack_over_threaded_transport() {
    let config = ServerConfig::stateful(ServerId::new(1)).with_transport(TransportKind::Threaded);
    let server = CoronaServer::bind("127.0.0.1:0", config).unwrap();
    stack_roundtrip(&server);
    server.shutdown();
}

/// Reads this process's live thread count from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// Reads the soft open-file limit from `/proc/self/limits`.
fn fd_soft_limit() -> Option<u64> {
    let limits = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = limits.lines().find(|l| l.starts_with("Max open files"))?;
    let soft = line.split_whitespace().nth(3)?;
    if soft == "unlimited" {
        return Some(u64::MAX);
    }
    soft.parse().ok()
}

/// C5k smoke test: 5000 concurrent members against a single reactor
/// server in this process. Every member receives a broadcast, and the
/// server's thread population stays O(shards + fan-out workers) —
/// nowhere near the O(2 × clients) a thread-per-connection transport
/// would need.
#[test]
fn c5k_reactor_sustains_five_thousand_members() {
    const MEMBERS: usize = 5000;

    // Both endpoints of every connection live in this process: ~2 fds
    // per member plus generous slack for the harness and the server.
    let need = (MEMBERS as u64) * 2 + 600;
    match fd_soft_limit() {
        Some(limit) if limit >= need => {}
        Some(limit) => {
            eprintln!(
                "SKIP c5k_reactor_sustains_five_thousand_members: \
                 fd limit {limit} < required {need} (raise `ulimit -n`)"
            );
            return;
        }
        None => {
            eprintln!(
                "SKIP c5k_reactor_sustains_five_thousand_members: \
                 cannot read /proc/self/limits"
            );
            return;
        }
    }

    let baseline = thread_count();
    let server = CoronaServer::bind(
        "127.0.0.1:0",
        ServerConfig::stateful(ServerId::new(1)).with_reactor_shards(4),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut members: Vec<RawMember> = Vec::with_capacity(MEMBERS);
    for i in 0..MEMBERS {
        let mut m = RawMember::connect(&addr, &format!("m{i}")).unwrap();
        m.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        if i == 0 {
            m.create_group(G).unwrap();
        }
        let seen = m.join(G).unwrap();
        assert_eq!(seen, i + 1, "member {i} saw wrong membership size");
        members.push(m);
    }

    // Thread count is a function of shards + workers + fixed runtime
    // threads, NOT of the 5000 connections: with thread-per-connection
    // this process would be past 10_000 threads here.
    let with_load = thread_count();
    let server_threads = with_load.saturating_sub(baseline);
    assert!(
        server_threads < 64,
        "server spawned {server_threads} threads for {MEMBERS} members \
         (baseline {baseline}, loaded {with_load}) — expected O(shards + workers)"
    );

    let payload = vec![0x42u8; 256];
    members[0].broadcast(G, DOC, payload.clone()).unwrap();
    for m in members.iter_mut() {
        let got = m.await_multicast(G).unwrap();
        assert_eq!(got.as_ref(), payload.as_slice());
    }

    drop(members);
    server.shutdown();
}
