//! End-to-end tracing through the live stack: a client broadcast over
//! real TCP must leave a complete span chain — submit → ingress →
//! sequence → append → deliver — with monotonic timestamps, stitched
//! together by the trace id carried on the wire.
//!
//! These tests flip the process-global tracing switch, so they live in
//! their own binary and serialise on a local mutex.

use corona::prelude::*;
use corona::trace::{self, Hop};
use std::sync::Mutex;
use std::time::Duration;

static TRACING: Mutex<()> = Mutex::new(());

const G: GroupId = GroupId(1);
const DOC: ObjectId = ObjectId(1);

fn storage_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("corona-trace-stack-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn broadcast_leaves_a_complete_monotonic_span_chain() {
    let _guard = TRACING.lock().unwrap();
    trace::set_enabled(true);
    trace::clear();

    // Inline logging puts the log append on the dispatcher thread, so
    // the chain's LogAppend hop is recorded before fan-out begins.
    let dir = storage_dir("chain");
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();
    let config = ServerConfig::stateful(ServerId::new(1))
        .with_storage(&dir)
        .with_log_on_critical_path(true);
    let server = CoronaServer::start(Box::new(acceptor), config).unwrap();

    let client = CoronaClient::connect(TcpDialer.dial(&addr).unwrap(), "tracer", None).unwrap();
    client
        .create_group(G, Persistence::Persistent, SharedState::new())
        .unwrap();
    client
        .join(
            G,
            MemberRole::Principal,
            StateTransferPolicy::FullState,
            false,
        )
        .unwrap();
    client
        .bcast_update(
            G,
            DOC,
            &b"traced update"[..],
            DeliveryScope::SenderInclusive,
        )
        .unwrap();
    // Wait for the sender-inclusive copy — the chain is complete once
    // it arrives.
    loop {
        if let ServerEvent::Multicast { .. } =
            client.next_event_timeout(Duration::from_secs(10)).unwrap()
        {
            break;
        }
    }

    let spans = trace::drain();
    client.close();
    server.shutdown();
    trace::set_enabled(false);
    let _ = std::fs::remove_dir_all(&dir);

    // Exactly one traced chain (the broadcast), carrying the full hop
    // sequence in timestamp order.
    let chain_id = spans
        .iter()
        .find(|s| s.hop == Hop::ClientSubmit)
        .expect("submit span")
        .trace;
    assert!(chain_id.is_some(), "chain must carry a real trace id");
    let chain: Vec<_> = spans.iter().filter(|s| s.trace == chain_id).collect();

    let expected = [
        Hop::ClientSubmit,
        Hop::ServerIngress,
        Hop::Sequence,
        Hop::LogAppend,
        Hop::FanoutEnqueue,
        Hop::ClientDeliver,
    ];
    for hop in expected {
        assert!(
            chain.iter().any(|s| s.hop == hop),
            "missing {hop:?} in chain: {chain:?}"
        );
    }
    // `drain` returns spans sorted by timestamp; the causal hop order
    // must match, i.e. per-hop timestamps are monotonic.
    let hop_order: Vec<Hop> = chain
        .iter()
        .filter(|s| expected.contains(&s.hop))
        .map(|s| s.hop)
        .collect();
    assert_eq!(hop_order, expected, "span chain out of order: {chain:?}");
    let mut prev = 0;
    for s in &chain {
        assert!(s.ts_us >= prev, "non-monotonic timestamps: {chain:?}");
        prev = s.ts_us;
    }

    // The delivery span measured the client-observed latency.
    let deliver = chain.iter().find(|s| s.hop == Hop::ClientDeliver).unwrap();
    let submit = chain.iter().find(|s| s.hop == Hop::ClientSubmit).unwrap();
    assert_eq!(deliver.dur_us, deliver.ts_us - submit.ts_us);
}

#[test]
fn disabled_tracing_records_nothing_across_the_stack() {
    let _guard = TRACING.lock().unwrap();
    trace::set_enabled(false);
    trace::clear();

    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();
    let server =
        CoronaServer::start(Box::new(acceptor), ServerConfig::stateful(ServerId::new(1))).unwrap();
    let client = CoronaClient::connect(TcpDialer.dial(&addr).unwrap(), "quiet", None).unwrap();
    client
        .create_group(G, Persistence::Transient, SharedState::new())
        .unwrap();
    client
        .join(
            G,
            MemberRole::Principal,
            StateTransferPolicy::FullState,
            false,
        )
        .unwrap();
    client
        .bcast_update(G, DOC, &b"untraced"[..], DeliveryScope::SenderInclusive)
        .unwrap();
    loop {
        if let ServerEvent::Multicast { .. } =
            client.next_event_timeout(Duration::from_secs(10)).unwrap()
        {
            break;
        }
    }
    client.close();
    server.shutdown();

    assert!(
        trace::drain().is_empty(),
        "disabled tracing must record nothing"
    );
}
